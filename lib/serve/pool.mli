(** Process-isolated query execution: a prefork worker pool.

    The cooperative {!Xmldoc.Budget} degrades well-behaved queries, and
    {!Query_exec.run_guarded} contains [Stack_overflow] and
    [Out_of_memory] — but an evaluator bug that segfaults, a native
    stack overflow the runtime cannot recover, or the kernel's OOM
    killer still take the whole process down.  The pool turns that
    worst case into the loss of {e one request}:

    - [workers] children are forked at startup.  Each loads its own
      read-only view of the catalog (same directory, own [Catalog.t])
      and serves QUERY/ANSWER lines over a pipe pair, evaluating under
      the full budget including the [max_heap_words] ceiling that is
      only safe to enforce in a sacrificial process.
    - The parent enforces a {e hard} wall-clock watchdog per request:
      the cooperative deadline plus [watchdog_grace].  A worker that
      blows it — stuck in a non-ticking loop, swapping, wedged — is
      SIGKILLed and the request answered with a structured
      [error worker-crash] line ({!Xmldoc.Fault.Worker_crash},
      exit code 6).
    - Dead workers are respawned under capped exponential backoff.
      [Unix.fork] failing (EAGAIN/ENOMEM) never crashes the pool: the
      slot waits out a backoff and the request is shed as
      [error overloaded].  The {!Xmldoc.Io_fault.Fork} site injects
      this in tests.
    - {e Poison-pill quarantine}: a (synopsis × query fingerprint) pair
      that kills or crashes workers [poison_threshold] times is
      answered [error poisoned] immediately, without forking — repeat
      offenders cannot grind the pool through its backoff budget.

    The pool serves only the read path.  Everything else (catalog
    management, builds, health) stays in the parent, so PING/HEALTH
    latency is bounded even while every worker is wedged.

    All operations are thread-safe; {!exec} is called concurrently from
    connection threads and never raises. *)

type config = {
  workers : int;  (** pool size; [0] disables the pool entirely *)
  limits : Xmldoc.Limits.t;  (** snapshot-load bounds for worker catalogs *)
  deadline : float option;  (** default cooperative per-request deadline, seconds *)
  max_answer_nodes : int;
  max_work : int;
  max_heap_words : int;  (** worker GC heap ceiling; [max_int] = uncapped *)
  auto_reload : bool;  (** workers re-stat the catalog before each request *)
  watchdog_grace : float;
      (** seconds past the cooperative deadline before the parent
          SIGKILLs the worker *)
  watchdog_floor : float;
      (** hard watchdog when a request has no deadline at all — the
          pool never waits unboundedly *)
  poison_threshold : int;
      (** worker kills/crashes before a (synopsis, query) pair is
          quarantined *)
  backoff_base : float;  (** first respawn delay after a crash, seconds *)
  backoff_cap : float;  (** respawn delay ceiling, seconds *)
  chaos_marker : string option;
      (** test hook: when [Some m], a query whose text contains
          [m ^ ":exit"] makes the worker die ([Unix._exit]),
          [m ^ ":hang"] makes it block past any watchdog, and
          [m ^ ":stackoverflow"] provokes genuine unbounded recursion.
          [None] (production) disables all of it. *)
}

val default_config : config
(** Pool disabled ([workers = 0]); 4 workers when enabled via the CLI;
    2 s grace, 30 s floor, quarantine after 3 kills, 0.05 s backoff
    doubling to a 2 s cap; no chaos. *)

type stats = {
  total : int;  (** configured pool size *)
  live : int;  (** workers currently forked and serving *)
  busy : int;  (** workers evaluating a request right now *)
  forks : int;  (** forks since the pool started (includes respawns) *)
  kills : int;  (** workers lost mid-request (crash, watchdog, OOM) *)
  poisoned : int;  (** requests answered from quarantine without forking *)
  quarantined : int;  (** distinct quarantined (synopsis, query) pairs *)
}

type t

val create : ?log:(string -> unit) -> config -> string -> t
(** [create config dir] preforks [config.workers] children serving the
    catalog directory [dir].  [log] receives one structured line per
    lifecycle event (default [prerr_endline]).  Fork failures at
    startup leave slots empty; they respawn lazily under backoff. *)

val enabled : t -> bool
(** [workers > 0]. *)

val exec :
  t ->
  name:string ->
  query_key:string ->
  opts:Protocol.opts ->
  line:string ->
  string
(** Execute the raw request [line] (a QUERY or ANSWER) on a pool
    worker and return the response line.  [name] is the target synopsis
    and [query_key] a canonical fingerprint of the query — together the
    poison-quarantine key.  [opts] are the request's parsed options,
    used to derive the hard watchdog.  Total: every failure mode
    (worker crash, watchdog kill, no worker available, quarantine)
    returns a structured [error ...] line. *)

val stats : t -> stats

val poisoned_pairs : t -> (string * string * int) list
(** Quarantined [(synopsis, query_key, kills)] triples, sorted —
    surfaced for HEALTH and tests. *)

val shutdown : t -> int
(** SIGKILL and reap every worker (workers are pure readers — nothing
    graceful to lose); returns how many were killed.  The pool is
    unusable afterwards: {!exec} answers [error overloaded]. *)
