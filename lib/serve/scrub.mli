(** Snapshot integrity scrubbing — the shared fsck core of the
    anti-entropy layer.

    One verification routine (raw read through the {!Xmldoc.Io_fault}
    taps, every CRC re-checked, every tier re-validated) reused by the
    catalog's load path, the background scrub job, the synchronous
    SCRUB protocol verb, and the [treesketch verify] offline fsck.

    Two identities fall out of a verification:
    - the {e content hash} — CRC-32 of the file's raw bytes.  Replicas
      hold the same snapshot iff their hashes match; a byte-identical
      peer repair restores the hash exactly.
    - the {e params fingerprint} — a hash of the build shape only
      (plain vs ladder, tier budgets), so two members that built the
      same name with different parameters read as divergent even when
      nothing has rotted. *)

val snapshot_extension : string
(** [".ts"] — the catalog's snapshot naming convention, single-sourced
    here so the scrubber and the catalog can never walk different file
    sets. *)

val is_tmp_orphan : string -> bool
(** Does this basename match the [.treesketch*.tmp] staging pattern of
    {!Sketch.Serialize.save_atomic}? *)

type info = {
  v_bytes : int;  (** file size in bytes *)
  v_crc : string;  (** content hash: 8-hex CRC-32 of the raw bytes *)
  v_fp : string;  (** build-params fingerprint, 8-hex *)
  v_tiers : int;  (** ladder rungs; 1 for a plain snapshot *)
}

val fingerprint : Sketch.Serialize.loaded -> string
(** The params fingerprint of a decoded snapshot. *)

val verify_string :
  ?limits:Xmldoc.Limits.t -> string -> (info, Xmldoc.Fault.t) result
(** Verify already-read bytes: full parse (all CRCs re-computed, all
    tiers [Synopsis.validate]d) plus hashing.  What the catalog load
    path and the FETCH receiver use, so bytes are read once. *)

val verify_file :
  ?limits:Xmldoc.Limits.t -> string -> (info, Xmldoc.Fault.t) result
(** {!verify_string} over {!Sketch.Serialize.load_raw_res}: re-read the
    file from disk and verify it end to end.  This is the scrub: a
    snapshot that loaded cleanly an hour ago and has rotted since fails
    {e here}, where the catalog's fingerprint cache would never look. *)

type file_report = {
  f_name : string;  (** snapshot name (extension stripped) *)
  f_path : string;
  f_result : (info, Xmldoc.Fault.t) result;
}

val scan :
  ?limits:Xmldoc.Limits.t ->
  string ->
  (file_report list, Xmldoc.Fault.t) result
(** Verify every [*.ts] snapshot under a directory, in name order.
    [Error] only when the directory itself cannot be scanned;
    individual corruption is data ([f_result = Error _]), not
    failure.

    Live-ingestion state ({!Ingest}) is verified too: each level
    manifest's CRC trailer and grammar, every delta file it lists
    against the manifest's per-level crc, and each WAL's frame CRCs.
    A torn WAL tail is a normal crash artifact that replay truncates —
    it passes.  Only {e failures} appear in the report (as corrupt
    entries under the synopsis name), so directories without ingestion
    state scan exactly as before. *)

val sweep_tmp : ?max_age:float -> string -> string list
(** Remove orphaned [.treesketch*.tmp] staging files older than
    [max_age] seconds (default 60) and return their names, sorted.
    The age gate protects live writers — a build worker or a repair
    installing through {!Sketch.Serialize.save_atomic} stages under
    the same pattern, but only for moments; a crash orphan only gets
    older.  Unremovable or vanished candidates are skipped, never
    fatal. *)

val sweep_levels : ?max_age:float -> string -> string list
(** Remove [.name.l<gen>.delta] level files no manifest references —
    left by a crash between a compaction's manifest swap and its input
    deletion, or between a level write and the swap that would have
    listed it.  Replay ignores them, so this is pure garbage
    collection.  Age-gated like {!sweep_tmp} (a live flush writes its
    level moments before referencing it); an unreadable manifest pins
    every level of its name, so nothing a repaired manifest may still
    list is lost.  Returns the swept names, sorted. *)

(** {2 Scrub-job report file}

    The scrub job runs as a forked child under the {!Jobs} supervisor
    and cannot touch the parent's resident catalog; it communicates
    through a hidden report file written atomically into the catalog
    directory, which the parent replays as quarantine decisions. *)

val report_path : string -> string
(** [dir/.scrub.report] — dot-prefixed, so the catalog scan never
    mistakes it for a snapshot. *)

val write_report : string -> file_report list -> (unit, Xmldoc.Fault.t) result
(** Render and atomically publish the report. *)

(** One parsed report line. *)
type reported =
  | Report_ok of info
  | Report_corrupt of { r_class : string; r_msg : string }

val read_report : string -> (string * reported) list option
(** Parse the report back, [None] if absent or unreadable.  Tolerant:
    unparseable lines are dropped — a torn or stale report quarantines
    nothing; the next scrub period rescans. *)

val remove_report : string -> unit
(** Best-effort deletion (consumed reports should not linger). *)
