(* Per-synopsis write-ahead log: the durability floor of INGEST.

   One hidden file per synopsis ([.<name>.wal] — dot-prefixed and not
   [.ts]-suffixed, so the catalog scan and the scrubber's snapshot walk
   never mistake it for a snapshot).  Records are CRC-framed.  Inserts
   keep the original (v1) frame, so an insert-only log is byte-identical
   to what earlier servers wrote and old logs replay unchanged:

     rec <seq> <ts> <len> <8-hex crc>\n
     <len payload bytes>\n

   Deletions and updates (v2) use a sibling header carrying the
   operation kind; a v1 replayer would treat the first [mut] frame as a
   tear, which is exactly the safe failure mode (truncate, lose nothing
   acked by a v1 server):

     mut <seq> <ts> <del|upd> <len> <8-hex crc>\n
     <len payload bytes>\n

   An append is not acknowledged until the frame is written AND fsynced
   through the {!Xmldoc.Io_fault} taps, so an acknowledged record
   survives any kill.  A crash mid-append leaves a torn tail — a
   malformed header, a payload cut short, a checksum mismatch — which
   replay truncates back to the last intact frame; everything before
   the tear is intact by construction (frames are only ever appended).

   Sequence numbers are assigned by the caller (the ingest engine) and
   must be strictly increasing; replay treats a regression the same as
   a tear, so a corrupted middle can never smuggle stale records past
   the exactly-once filter. *)

type op = Insert | Delete | Update

type record = {
  seq : int;
  ts : float;  (* arrival wall-clock, for staleness bounds *)
  op : op;
  payload : string;
}

let file_suffix = ".wal"

let path ~dir ~name = Filename.concat dir ("." ^ name ^ file_suffix)

(* [Some name] iff [file] is a WAL file name. *)
let wal_name file =
  if
    String.length file > 1 + String.length file_suffix
    && file.[0] = '.'
    && Filename.check_suffix file file_suffix
  then Some (String.sub file 1 (String.length file - 1 - String.length file_suffix))
  else None

let op_token = function Insert -> "ins" | Delete -> "del" | Update -> "upd"

let op_of_token = function
  | "ins" -> Some Insert
  | "del" -> Some Delete
  | "upd" -> Some Update
  | _ -> None

let frame r =
  let crc = Sketch.Crc32.to_hex (Sketch.Crc32.string r.payload) in
  match r.op with
  | Insert ->
    Printf.sprintf "rec %d %.6f %d %s\n%s\n" r.seq r.ts
      (String.length r.payload) crc r.payload
  | Delete | Update ->
    Printf.sprintf "mut %d %.6f %s %d %s\n%s\n" r.seq r.ts (op_token r.op)
      (String.length r.payload) crc r.payload

let render records = String.concat "" (List.map frame records)

(* Parse [text] into (intact records, byte length of the intact prefix,
   torn).  Total: any malformed or out-of-order frame ends the parse at
   the frame's start offset — the truncation point replay repairs to. *)
let parse text =
  let len = String.length text in
  let records = ref [] in
  let good = ref 0 in
  let torn = ref false in
  let pos = ref 0 in
  let prev_seq = ref min_int in
  (try
     while !pos < len do
       let start = !pos in
       let tear () =
         torn := true;
         raise Exit
       in
       match String.index_from_opt text start '\n' with
       | None -> tear ()
       | Some nl -> (
         let header = String.sub text start (nl - start) in
         (* both header forms share a tail of (len, crc) preceded by a
            seq/ts prefix; [mut] carries the op token in between *)
         let fields =
           match String.split_on_char ' ' header with
           | [ "rec"; seq; ts; plen; crc ] -> Some (seq, ts, Insert, plen, crc)
           | [ "mut"; seq; ts; op; plen; crc ] -> (
             match op_of_token op with
             | Some ((Delete | Update) as op) -> Some (seq, ts, op, plen, crc)
             | Some Insert | None -> None)
           | _ -> None
         in
         match fields with
         | None -> tear ()
         | Some (seq, ts, op, plen, crc) -> (
           match
             ( int_of_string_opt seq,
               float_of_string_opt ts,
               int_of_string_opt plen,
               Sketch.Crc32.of_hex crc )
           with
           | Some seq, Some ts, Some plen, Some declared
             when plen >= 0 && seq > !prev_seq ->
             (* payload + its trailing newline must be fully present *)
             if nl + 1 + plen + 1 > len then tear ()
             else begin
               let payload = String.sub text (nl + 1) plen in
               if text.[nl + 1 + plen] <> '\n' then tear ()
               else if not (Int32.equal declared (Sketch.Crc32.string payload))
               then tear ()
               else begin
                 prev_seq := seq;
                 records := { seq; ts; op; payload } :: !records;
                 pos := nl + 1 + plen + 1;
                 good := !pos
               end
             end
           | _ -> tear ()))
     done
   with Exit -> ());
  (List.rev !records, !good, !torn)

type t = {
  wal_path : string;
  mutable fd : Unix.file_descr option;
  mutable bytes : int;
      (* bytes of intact log on disk — the write-pressure controller's
         "WAL outstanding" signal, maintained without stat calls *)
}

let read_all ?(limits = Xmldoc.Limits.default) path =
  match
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path;
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > limits.Xmldoc.Limits.max_bytes then
          Error
            (Xmldoc.Fault.Limit_exceeded
               { what = "bytes"; actual = len; limit = limits.max_bytes })
        else begin
          Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Read ~path;
          (* a short read observes a prefix — indistinguishable from a
             torn tail, and handled identically by the parser *)
          Ok
            (really_input_string ic
               (Xmldoc.Io_fault.cap Xmldoc.Io_fault.Read ~path len))
        end)
  with
  | result -> result
  | exception Sys_error message -> Error (Xmldoc.Fault.Io_error { path; message })
  | exception End_of_file ->
    Error (Xmldoc.Fault.Io_error { path; message = "unexpected end of file" })
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Xmldoc.Fault.Io_error { path; message = fn ^ ": " ^ Unix.error_message e })

(* Read-only verification (the scrubber, [treesketch verify]): parse
   without repairing.  A torn tail is data, not failure — replay will
   truncate it; only an unreadable file is an error. *)
let scan ?limits path =
  if not (Sys.file_exists path) then Ok ([], false)
  else
    match read_all ?limits path with
    | Error f -> Error f
    | Ok text ->
      let records, _, torn = parse text in
      Ok (records, torn)

let open_ ?limits ~dir ~name () =
  let wal_path = path ~dir ~name in
  let replayed =
    if Sys.file_exists wal_path then
      match read_all ?limits wal_path with
      | Error f -> Error f
      | Ok text ->
        let records, good, torn = parse text in
        if torn then begin
          (* truncate the tear away so appends never land after garbage *)
          match Unix.openfile wal_path [ Unix.O_WRONLY ] 0o666 with
          | fd ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.ftruncate fd good);
            Ok (records, good, true)
          | exception Unix.Unix_error (e, fn, _) ->
            Error
              (Xmldoc.Fault.Io_error
                 {
                   path = wal_path;
                   message = fn ^ ": " ^ Unix.error_message e;
                 })
        end
        else Ok (records, good, false)
    else Ok ([], 0, false)
  in
  match replayed with
  | Error f -> Error f
  | Ok (records, good, torn) -> (
    match
      Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path:wal_path;
      Unix.openfile wal_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o666
    with
    | fd -> Ok ({ wal_path; fd = Some fd; bytes = good }, records, torn)
    | exception Unix.Unix_error (e, fn, _) ->
      Error
        (Xmldoc.Fault.Io_error
           { path = wal_path; message = fn ^ ": " ^ Unix.error_message e }))

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None

let wal_path t = t.wal_path

let bytes t = t.bytes

(* Append one frame and make it durable.  A short write (disk full
   caught mid-frame) or an explicit ENOSPC rolls the file back to the
   pre-append length and reports [`No_space] — the caller defers the
   ingest, and the log never contains the tear we just created.  Any
   other failure also rolls back, as a structured fault.

   The pre-append length must be known before anything is written: if
   it cannot be established the append fails fast WITHOUT writing,
   because a rollback to a guessed base could truncate acknowledged
   records (a base of 0 would wipe the whole log). *)
let append t record =
  match t.fd with
  | None ->
    Error (`Fault (Xmldoc.Fault.Io_error { path = t.wal_path; message = "wal closed" }))
  | Some fd -> (
    let text = frame record in
    let len = String.length text in
    match Unix.lseek fd 0 Unix.SEEK_END with
    | exception Unix.Unix_error (e, fn, _) ->
      Error
        (`Fault
          (Xmldoc.Fault.Io_error
             { path = t.wal_path; message = fn ^ ": " ^ Unix.error_message e }))
    | base -> (
      let rollback () = try Unix.ftruncate fd base with Unix.Unix_error _ -> () in
      match
        Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Write ~path:t.wal_path;
        let n = Xmldoc.Io_fault.cap Xmldoc.Io_fault.Write ~path:t.wal_path len in
        let bytes = Bytes.of_string text in
        let rec write off =
          if off < n then write (off + Unix.write fd bytes off (n - off))
        in
        write 0;
        if n < len then raise (Unix.Unix_error (Unix.ENOSPC, "write", t.wal_path));
        (* the acknowledgement contract: durable before acked *)
        Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Fsync ~path:t.wal_path;
        Unix.fsync fd
      with
      | () ->
        t.bytes <- base + len;
        Ok ()
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) ->
        rollback ();
        Error `No_space
      | exception Unix.Unix_error (e, fn, _) ->
        rollback ();
        Error
          (`Fault
            (Xmldoc.Fault.Io_error
               { path = t.wal_path; message = fn ^ ": " ^ Unix.error_message e }))
      | exception Sys_error message ->
        rollback ();
        Error (`Fault (Xmldoc.Fault.Io_error { path = t.wal_path; message }))))

(* Replace the log's contents with exactly [records] — how the engine
   discards flushed records after the manifest swap committed them.
   Atomic (write-temp-rename through {!Sketch.Serialize.write_atomic}),
   so a crash mid-trim leaves either the old log (replay skips the
   already-flushed records via the manifest's flushed sequence) or the
   new one; never a tear. *)
let rewrite t records =
  let text = render records in
  match Sketch.Serialize.write_atomic t.wal_path text with
  | Error f -> Error f
  | Ok () -> (
    close t;
    match
      Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path:t.wal_path;
      Unix.openfile t.wal_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o666
    with
    | fd ->
      t.fd <- Some fd;
      t.bytes <- String.length text;
      Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
      Error
        (Xmldoc.Fault.Io_error
           { path = t.wal_path; message = fn ^ ": " ^ Unix.error_message e }))
