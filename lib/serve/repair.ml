(* Peer snapshot repair: the pull side of anti-entropy.

   A member whose snapshot rotted in place (scrub quarantine) or
   diverged from the group (content-hash disagreement) pulls a clean
   copy from a peer over the ordinary line protocol: FETCH streams the
   raw file bytes in length-prefixed, CRC'd, hex-armoured chunks; the
   puller re-verifies every chunk, the whole-file checksum, AND a full
   parse-and-validate of the assembled bytes before installing them
   byte-identically via the atomic-rename writer — so content hashes
   converge exactly, and no failure mode (torn stream, lying peer,
   injected I/O fault, disk full) can ever publish a partial file.

   Wire format (the only multi-line response in the protocol):

     FETCH <name>
     ok fetch name=<n> bytes=<N> chunks=<k> crc=<8-hex>
     chunk <i> <rawlen> <8-hex crc of raw> <hex data>
     ...                                     (k chunk lines)
     end fetch

   Chunks are hex-armoured so the stream stays line-oriented (no byte
   of a snapshot can fake a newline), and individually checksummed so
   a tear is localised to the first bad line instead of surfacing as a
   whole-file mismatch after megabytes of transfer. *)

let chunk_bytes = 32768

(* ------------------------------------------------------------------ *)
(* Hex armour                                                          *)
(* ------------------------------------------------------------------ *)

let hex_encode s =
  let out = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string out (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents out

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Some (Bytes.to_string out)
      else
        match (digit s.[i], digit s.[i + 1]) with
        | Some hi, Some lo ->
          Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | _ -> None
    in
    go 0

let crc_hex s = Sketch.Crc32.to_hex (Sketch.Crc32.string s)

(* ------------------------------------------------------------------ *)
(* Framing (serving side)                                              *)
(* ------------------------------------------------------------------ *)

(* The whole FETCH response as one string (the server's writer appends
   the final newline).  The per-chunk Write taps make a torn stream
   injectable exactly where a real one would tear — mid-chunk — and the
   cap cuts a chunk's armour short, which the puller's per-chunk CRC
   rejects.

   The source file must stay in place for the whole stream: a snapshot
   deleted or replaced (new inode, via the atomic-rename publishers)
   while the chunks render means the bytes in hand no longer match what
   the catalog advertises — a puller installing them would immediately
   diverge again on the next hash census.  Re-stat before each chunk
   and abort with one clean [error fetch-gone] line instead of framing
   a stale stream. *)
let render_fetch ~path ~name text =
  let identity () =
    match
      Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Stat ~path;
      Unix.stat path
    with
    | st -> Some (st.Unix.st_ino, st.Unix.st_size)
    | exception (Unix.Unix_error _ | Sys_error _) -> None
  in
  let gone () =
    Protocol.error_line ~cls:"fetch-gone"
      (Printf.sprintf "snapshot %S was removed or replaced mid-stream" name)
  in
  match identity () with
  | None -> gone ()
  | Some initial ->
    let total = String.length text in
    let chunks = max 1 ((total + chunk_bytes - 1) / chunk_bytes) in
    let lines = Buffer.create (total * 2 + 256) in
    Buffer.add_string lines
      (Printf.sprintf "ok fetch name=%s bytes=%d chunks=%d crc=%s" name total
         chunks (crc_hex text));
    let rec chunk i =
      if i >= chunks then begin
        Buffer.add_string lines "\nend fetch";
        Buffer.contents lines
      end
      else if identity () <> Some initial then gone ()
      else begin
        let off = i * chunk_bytes in
        let len = min chunk_bytes (total - off) in
        let raw = String.sub text off len in
        Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Write ~path;
        let armour = hex_encode raw in
        let armour =
          let keep =
            Xmldoc.Io_fault.cap Xmldoc.Io_fault.Write ~path (String.length armour)
          in
          if keep >= String.length armour then armour
          else String.sub armour 0 keep
        in
        Buffer.add_string lines
          (Printf.sprintf "\nchunk %d %d %s %s" i len (crc_hex raw) armour);
        chunk (i + 1)
      end
    in
    chunk 0

(* ------------------------------------------------------------------ *)
(* Transport (pull side)                                               *)
(* ------------------------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect ~timeout path =
  match Xmldoc.Io_fault.tap Xmldoc.Io_fault.Connect ~path with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match
      Unix.set_nonblock fd;
      Unix.connect fd (Unix.ADDR_UNIX path)
    with
    | () ->
      Unix.clear_nonblock fd;
      Ok fd
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) -> (
      match Unix.select [] [ fd ] [] timeout with
      | [], [], [] ->
        close_quietly fd;
        Error "connect timed out"
      | _ -> (
        match Unix.getsockopt_error fd with
        | None ->
          Unix.clear_nonblock fd;
          Ok fd
        | Some e ->
          close_quietly fd;
          Error (Unix.error_message e))
      | exception Unix.Unix_error (e, _, _) ->
        close_quietly fd;
        Error (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      close_quietly fd;
      Error (Unix.error_message e))

let send_all fd ~path data ~deadline =
  let data = Bytes.of_string data in
  let len = Bytes.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      let budget = deadline -. Unix.gettimeofday () in
      if budget <= 0.0 then Error "send deadline"
      else
        match Unix.select [] [ fd ] [] budget with
        | _, [], _ -> Error "send deadline"
        | _ -> (
          match
            Xmldoc.Io_fault.tap Xmldoc.Io_fault.Write ~path;
            Unix.write fd data off (len - off)
          with
          | n -> go (off + n)
          | exception Unix.Unix_error (EINTR, _, _) -> go off
          | exception Unix.Unix_error (e, _, _) ->
            Error ("write: " ^ Unix.error_message e))
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error (e, _, _) ->
          Error ("select: " ^ Unix.error_message e)
  in
  go 0

(* Line reader over a receive buffer: FETCH responses are many lines
   on one connection, so leftover bytes after each '\n' must carry
   over to the next call (the coordinator's one-shot reader can simply
   drop them). *)
type line_reader = {
  fd : Unix.file_descr;
  r_path : string;
  buf : Buffer.t;
}

let reader ~path fd = { fd; r_path = path; buf = Buffer.create 4096 }

let read_line_r reader ~deadline =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents reader.buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear reader.buf;
      Buffer.add_string reader.buf
        (String.sub s (i + 1) (String.length s - i - 1));
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Ok line
    | None -> (
      let budget = deadline -. Unix.gettimeofday () in
      if budget <= 0.0 then Error "receive deadline"
      else
        match Unix.select [ reader.fd ] [] [] budget with
        | [], _, _ -> Error "receive deadline"
        | _ -> (
          match
            Xmldoc.Io_fault.tap Xmldoc.Io_fault.Read ~path:reader.r_path;
            Unix.read reader.fd chunk 0 (Bytes.length chunk)
          with
          | 0 -> Error "connection closed"
          | n ->
            Buffer.add_subbytes reader.buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) ->
            Error ("read: " ^ Unix.error_message e))
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
          Error ("select: " ^ Unix.error_message e))
  in
  go ()

(* One request, one single-line response (HEALTH, LIST probing). *)
let request_line ~timeout peer line =
  match connect ~timeout peer with
  | Error e -> Error (peer ^ ": " ^ e)
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        let deadline = Unix.gettimeofday () +. timeout in
        match send_all fd ~path:peer (line ^ "\n") ~deadline with
        | Error e -> Error (peer ^ ": " ^ e)
        | Ok () -> (
          match read_line_r (reader ~path:peer fd) ~deadline with
          | Error e -> Error (peer ^ ": " ^ e)
          | Ok resp -> Ok resp))

(* ------------------------------------------------------------------ *)
(* Header / chunk parsing (pull side)                                  *)
(* ------------------------------------------------------------------ *)

let kv prefix tok =
  if
    String.length tok > String.length prefix
    && String.sub tok 0 (String.length prefix) = prefix
  then Some (String.sub tok (String.length prefix) (String.length tok - String.length prefix))
  else None

let parse_fetch_header line =
  match String.split_on_char ' ' line with
  | [ "ok"; "fetch"; name; bytes; chunks; crc ] -> (
    match
      ( kv "name=" name,
        Option.bind (kv "bytes=" bytes) int_of_string_opt,
        Option.bind (kv "chunks=" chunks) int_of_string_opt,
        kv "crc=" crc )
    with
    | Some name, Some bytes, Some chunks, Some crc
      when bytes >= 0 && chunks >= 1 ->
      Ok (name, bytes, chunks, crc)
    | _ -> Error ("malformed fetch header: " ^ line)
  )
  | "error" :: _ -> Error line
  | _ -> Error ("malformed fetch header: " ^ line)

let parse_chunk ~index line =
  match String.split_on_char ' ' line with
  | [ "chunk"; i; rawlen; crc; armour ] -> (
    match (int_of_string_opt i, int_of_string_opt rawlen) with
    | Some i, Some rawlen when i = index && rawlen >= 0 -> (
      match hex_decode armour with
      | None -> Error (Printf.sprintf "chunk %d: bad hex armour" index)
      | Some raw ->
        if String.length raw <> rawlen then
          Error
            (Printf.sprintf "chunk %d: torn (%d of %d bytes)" index
               (String.length raw) rawlen)
        else if crc_hex raw <> crc then
          Error (Printf.sprintf "chunk %d: checksum mismatch" index)
        else Ok raw)
    | _ -> Error (Printf.sprintf "chunk %d: malformed chunk line" index))
  | _ -> Error (Printf.sprintf "chunk %d: expected a chunk line, got %S" index line)

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

(* Pull [name]'s raw snapshot bytes from [peer].  Every layer of the
   armour is checked — per-chunk length and CRC, chunk count, total
   length, whole-file CRC — then the assembled bytes must parse and
   validate as a snapshot ({!Scrub.verify_string}).  Only bytes that
   survive all of it are returned. *)
let fetch ?limits ~timeout peer name =
  match connect ~timeout peer with
  | Error e -> Error (peer ^ ": " ^ e)
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        let deadline = Unix.gettimeofday () +. timeout in
        match send_all fd ~path:peer ("FETCH " ^ name ^ "\n") ~deadline with
        | Error e -> Error (peer ^ ": " ^ e)
        | Ok () -> (
          let r = reader ~path:peer fd in
          match Result.bind (read_line_r r ~deadline) parse_fetch_header with
          | Error e -> Error (peer ^ ": " ^ e)
          | Ok (fetched_name, bytes, chunks, crc) ->
            if fetched_name <> name then
              Error (Printf.sprintf "%s: peer answered for %S" peer fetched_name)
            else begin
              let out = Buffer.create bytes in
              let rec pull i =
                if i >= chunks then
                  match read_line_r r ~deadline with
                  | Ok "end fetch" -> Ok ()
                  | Ok line -> Error (Printf.sprintf "expected end fetch, got %S" line)
                  | Error e -> Error e
                else
                  match Result.bind (read_line_r r ~deadline) (parse_chunk ~index:i) with
                  | Error e -> Error e
                  | Ok raw ->
                    Buffer.add_string out raw;
                    pull (i + 1)
              in
              match pull 0 with
              | Error e -> Error (peer ^ ": " ^ e)
              | Ok () ->
                let text = Buffer.contents out in
                if String.length text <> bytes then
                  Error
                    (Printf.sprintf "%s: torn fetch (%d of %d bytes)" peer
                       (String.length text) bytes)
                else if crc_hex text <> crc then
                  Error (peer ^ ": whole-file checksum mismatch")
                else (
                  match Scrub.verify_string ?limits text with
                  | Error f ->
                    Error (peer ^ ": fetched bytes invalid: " ^ Xmldoc.Fault.to_string f)
                  | Ok _ -> Ok text)
            end))

(* ------------------------------------------------------------------ *)
(* ENOSPC preflight + install                                          *)
(* ------------------------------------------------------------------ *)

(* Can the catalog directory hold [bytes] more?  Probed empirically —
   preallocate a staging file of that size and remove it — because the
   answer must come from the same filesystem, quota and fault-injection
   regime the real install will face.  [Error `No_space] is the repair
   deferral signal; anything else fails the attempt.

   [free]/[min_free] teach the preflight the server's hard disk
   watermark (see {!Write_pressure}): an install that would SUCCEED but
   push free space under the watermark is deferred too — repair must
   not consume the headroom the watermark exists to protect.  A probe
   returning [None] fails open, same as the watermark itself. *)
let preflight ?free ?(min_free = 0) dir ~bytes =
  match
    if min_free <= 0 then None
    else Option.bind free (fun probe -> probe ())
  with
  | Some avail when avail - bytes < min_free -> Error `No_space
  | Some _ | None -> (
  match Filename.temp_file ~temp_dir:dir ".treesketch-preflight" ".tmp" with
  | exception Sys_error m -> Error (`Io m)
  | tmp ->
    let block = Bytes.make 65536 '\000' in
    let result =
      match
        Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path:tmp;
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      with
      | exception Unix.Unix_error (e, _, _) -> Error (`Io (Unix.error_message e))
      | fd ->
        Fun.protect
          ~finally:(fun () -> close_quietly fd)
          (fun () ->
            let rec fill remaining =
              if remaining <= 0 then Ok ()
              else
                let want = min remaining (Bytes.length block) in
                match
                  Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Write ~path:tmp;
                  let want' = Xmldoc.Io_fault.cap Xmldoc.Io_fault.Write ~path:tmp want in
                  if want' < want then raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp));
                  Unix.write fd block 0 want
                with
                | n when n < want ->
                  (* a short write outside injection is the kernel
                     saying the disk is full *)
                  Error `No_space
                | n -> fill (remaining - n)
                | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> Error `No_space
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill remaining
                | exception Unix.Unix_error (e, _, _) ->
                  Error (`Io (Unix.error_message e))
            in
            fill bytes)
    in
    (try
       Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Close ~path:tmp;
       Sys.remove tmp
     with Sys_error _ | Unix.Unix_error _ -> ());
    result)

let install ~dir ~name text =
  Sketch.Serialize.write_atomic
    (Filename.concat dir (name ^ Scrub.snapshot_extension))
    text

(* ------------------------------------------------------------------ *)
(* Peer census                                                         *)
(* ------------------------------------------------------------------ *)

(* A peer's per-synopsis identities, from its LIST line's
   [hashes=name:crc:fp,...] token. *)
let parse_hashes_token line =
  List.fold_left
    (fun acc word ->
      match kv "hashes=" word with
      | None -> acc
      | Some csv ->
        List.filter_map
          (fun item ->
            match String.split_on_char ':' item with
            | [ name; crc; fp ] -> Some (name, (crc, fp))
            | _ -> None)
          (String.split_on_char ',' csv))
    [] (String.split_on_char ' ' line)

let peer_hashes ~timeout peer =
  match request_line ~timeout peer "LIST" with
  | Error e -> Error e
  | Ok line ->
    if String.length line >= 3 && String.sub line 0 3 = "ok " then
      Ok (parse_hashes_token line)
    else Error (peer ^ ": " ^ line)

(* ------------------------------------------------------------------ *)
(* The repair pass                                                     *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Repaired of { name : string; peer : string; crc : string }
  | Deferred of { name : string; reason : string }
      (** ENOSPC preflight failed — try again when space frees up *)
  | Failed of { name : string; reason : string }

let outcome_name = function
  | Repaired { name; _ } | Deferred { name; _ } | Failed { name; _ } -> name

(* What a repair pass should pull, given the local view and each
   peer's census:

   - every locally quarantined name any peer still lists (our copy is
     known-bad; the fetch-side verification, not a vote, is the guard
     against a peer serving equal rot);
   - every name where at least two peers agree on a content identity
     the local catalog lacks or contradicts (a single peer's word
     cannot overrule a locally-clean copy — with one peer there is no
     quorum, so divergence repair simply stays off).

   Deletions are never propagated: a name only we hold is left alone.
   Returns [(name, candidate peers)] with agreeing peers first,
   name-sorted. *)
let plan ~local_hashes ~quarantined ~peer_census =
  let module M = Map.Make (String) in
  let local = List.fold_left (fun m (n, crc, _) -> M.add n crc m) M.empty local_hashes in
  let holders name =
    List.filter_map
      (fun (peer, listing) ->
        match List.assoc_opt name listing with
        | Some (crc, _) -> Some (peer, crc)
        | None -> None)
      peer_census
  in
  let quarantine_targets =
    List.filter_map
      (fun name ->
        match holders name with
        | [] -> None
        | hs ->
          (* prefer the majority identity among peers, if any *)
          let counts =
            List.fold_left
              (fun m (_, crc) -> M.add crc (1 + Option.value ~default:0 (M.find_opt crc m)) m)
              M.empty hs
          in
          let best_crc, _ =
            M.fold (fun crc n (bc, bn) -> if n > bn then (crc, n) else (bc, bn)) counts ("", 0)
          in
          let agreeing, others = List.partition (fun (_, crc) -> crc = best_crc) hs in
          Some (name, List.map fst (agreeing @ others)))
      quarantined
  in
  let divergence_targets =
    let all_names =
      List.sort_uniq String.compare
        (List.concat_map (fun (_, listing) -> List.map fst listing) peer_census)
    in
    List.filter_map
      (fun name ->
        if List.mem name quarantined then None
        else
          match holders name with
          | [] | [ _ ] -> None (* no quorum possible *)
          | hs ->
            let counts =
              List.fold_left
                (fun m (_, crc) ->
                  M.add crc (1 + Option.value ~default:0 (M.find_opt crc m)) m)
                M.empty hs
            in
            let best_crc, support =
              M.fold (fun crc n (bc, bn) -> if n > bn then (crc, n) else (bc, bn)) counts ("", 0)
            in
            if support < 2 then None
            else if M.find_opt name local = Some best_crc then None
            else
              Some (name, List.filter_map (fun (p, crc) -> if crc = best_crc then Some p else None) hs))
      all_names
  in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (quarantine_targets @ divergence_targets)

(* Pull one name from the first candidate peer that yields bytes
   surviving full verification, then preflight and install.  ENOSPC
   defers (the copy we could not write is still on the peers; nothing
   is lost by waiting), any other exhaustion fails. *)
let repair_one ?limits ?free ?min_free ~timeout ~dir name candidates =
  let rec try_peers last = function
    | [] -> Failed { name; reason = last }
    | peer :: rest -> (
      match fetch ?limits ~timeout peer name with
      | Error e -> try_peers e rest
      | Ok text -> (
        match preflight ?free ?min_free dir ~bytes:(String.length text) with
        | Error `No_space ->
          Deferred { name; reason = Printf.sprintf "no space for %d bytes" (String.length text) }
        | Error (`Io m) -> Failed { name; reason = "preflight: " ^ m }
        | Ok () -> (
          match install ~dir ~name text with
          | Error (Xmldoc.Fault.Io_error { message; _ })
            when (let lower = String.lowercase_ascii message in
                  let rec has i =
                    i + 8 <= String.length lower
                    && (String.sub lower i 8 = "no space" || has (i + 1))
                  in
                  has 0) ->
            Deferred { name; reason = message }
          | Error f -> Failed { name; reason = Xmldoc.Fault.to_string f }
          | Ok () -> Repaired { name; peer; crc = crc_hex text })))
  in
  try_peers "no peer holds it" candidates

(* One full anti-entropy pull: census the peers, plan, repair each
   target.  Peers that fail to answer LIST are simply absent from the
   census (and logged by the caller); a total census failure yields an
   empty plan, not an error — repair is opportunistic by design. *)
let sync ?limits ?free ?min_free ~timeout ~dir ~peers ~local_hashes ~quarantined
    () =
  let peer_census =
    List.filter_map
      (fun peer ->
        match peer_hashes ~timeout peer with
        | Ok listing -> Some (peer, listing)
        | Error _ -> None)
      peers
  in
  let targets = plan ~local_hashes ~quarantined ~peer_census in
  List.map
    (fun (name, candidates) ->
      repair_one ?limits ?free ?min_free ~timeout ~dir name candidates)
    targets
