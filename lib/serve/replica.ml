(* A registry of identical replicas of one synopsis catalog.

   The group's job is ranking: given every observation made about the
   members — live-traffic successes and failures, background HEALTH
   probes — produce the order a request should try them in.  The state
   machine per replica:

     Ready --failures >= eject_threshold--> Ejected(until)
     Ejected --cooldown elapses--> Probation (one strike re-ejects)
     Probation --success--> Ready
     any --probe says ready=no--> Draining (deprioritized, not ejected)

   Ejection cooldowns are jittered from the group's seeded rng so a
   flapping replica is not re-probed by every coordinator in lockstep,
   and tests replay exactly.  Ranking never returns an empty list while
   the group has members: when everything is ejected the group fails
   OPEN — the least-recently-ejected replicas are still offered,
   because trying a probably-dead server beats refusing the request. *)

type config = {
  eject_threshold : int;
  eject_cooldown : float;
  readmit_jitter : float;
  seed : int;
}

let default_config =
  { eject_threshold = 3; eject_cooldown = 2.0; readmit_jitter = 0.5; seed = 0 }

type state = Ready | Draining | Suspect | Probation | Ejected

let state_name = function
  | Ready -> "ready"
  | Draining -> "draining"
  | Suspect -> "suspect"
  | Probation -> "probation"
  | Ejected -> "ejected"

type replica = {
  path : string;
  mutable fails : int;  (* consecutive failures since the last success *)
  mutable draining : bool;  (* last probe answered [ready=no] *)
  mutable load : int;
      (* last probed brownout level ([load=<n>] in HEALTH); 0 = cool.
         A browned-out member still serves — coarser, not slower — so
         it ranks below Ready-and-cool members without changing state. *)
  mutable staleness : float;
      (* last probed ingestion staleness bound ([staleness=<s>] in
         HEALTH); 0 = fully flushed (or no live ingestion).  A lagging
         member still serves correct-but-older answers, so like [load]
         it reorders within a state tier without changing state. *)
  mutable write_state : string;
      (* last probed [write_state=<s>] from HEALTH ("ok", "paced",
         "shedding", "readonly"); absent reads as "ok".  Only write
         routing cares ({!rank} [~writes:true]): a shedding or
         readonly member serves reads at full quality. *)
  mutable ejected_until : float;
      (* 0 = never ejected; a past timestamp = on probation *)
  mutable catalog_hash : string;
      (* last probed [catalog_hash=<hex>] from HEALTH; "" = unknown *)
  mutable stale : bool;
      (* this member's catalog hash disagrees with the group's modal
         hash (see [mark_divergent]): it answers, but from different
         content, so it reads as Suspect until anti-entropy repair
         converges it.  Deprioritized, never ejected — a stale answer
         is an approximate answer, which still beats no answer. *)
  mutable served : int;
  mutable failed : int;
  mutable probes : int;
}

type t = {
  config : config;
  lock : Mutex.t;
  rng : Random.State.t;
  members : replica array;
  mutable cursor : int;  (* rotates the Ready tier so load spreads *)
}

let create ?(config = default_config) paths =
  if paths = [] then invalid_arg "Replica.create: no replica sockets";
  if config.eject_threshold < 1 then
    invalid_arg "Replica.create: eject_threshold must be >= 1";
  {
    config;
    lock = Mutex.create ();
    rng = Random.State.make [| config.seed |];
    members =
      Array.of_list
        (List.map
           (fun path ->
             {
               path;
               fails = 0;
               draining = false;
               load = 0;
               staleness = 0.0;
               write_state = "ok";
               ejected_until = 0.0;
               catalog_hash = "";
               stale = false;
               served = 0;
               failed = 0;
               probes = 0;
             })
           paths);
    cursor = 0;
  }

let size t = Array.length t.members

let members t = Array.to_list t.members

let path r = r.path

let state_at now r =
  if r.ejected_until > now then Ejected
  else if r.ejected_until > 0.0 then Probation
  else if r.draining then Draining
  else if r.fails > 0 || r.stale then Suspect
  else Ready

let state t r =
  Mutex.protect t.lock (fun () -> state_at (Unix.gettimeofday ()) r)

let eject_locked t r now =
  let jitter = 1.0 +. Random.State.float t.rng t.config.readmit_jitter in
  r.ejected_until <- now +. (t.config.eject_cooldown *. jitter)

let note_success t r =
  Mutex.protect t.lock (fun () ->
      r.served <- r.served + 1;
      r.fails <- 0;
      r.ejected_until <- 0.0)

let note_failure t r =
  Mutex.protect t.lock (fun () ->
      let now = Unix.gettimeofday () in
      r.failed <- r.failed + 1;
      r.fails <- r.fails + 1;
      (* one strike on probation, or the threshold from health *)
      if r.ejected_until > 0.0 || r.fails >= t.config.eject_threshold then
        eject_locked t r now)

let note_probe ?(load = 0) ?(staleness = 0.0) ?(write_state = "ok")
    ?catalog_hash t r outcome =
  Mutex.protect t.lock (fun () -> r.probes <- r.probes + 1);
  let record_hash () =
    match catalog_hash with None -> () | Some h -> r.catalog_hash <- h
  in
  match outcome with
  | `Ready ->
    Mutex.protect t.lock (fun () ->
        r.draining <- false;
        r.load <- load;
        r.staleness <- staleness;
        r.write_state <- write_state;
        record_hash ();
        r.fails <- 0;
        r.ejected_until <- 0.0)
  | `Not_ready ->
    (* the replica answered — it is alive, just not taking new traffic
       (draining, catalog wedged).  Deprioritize, don't eject: ejection
       is for members that cost a timeout to discover. *)
    Mutex.protect t.lock (fun () ->
        r.draining <- true;
        r.load <- load;
        r.staleness <- staleness;
        r.write_state <- write_state;
        record_hash ();
        r.fails <- 0)
  | `Failed -> note_failure t r

let load r = r.load

let staleness r = r.staleness

let write_state r = r.write_state

(* How costly routing a MUTATION at this member would be: a shedding
   member answers [ingest-deferred], a readonly one refuses outright.
   Reads never pay this — both still serve queries at full quality. *)
let write_penalty r =
  match r.write_state with "shedding" -> 1 | "readonly" -> 2 | _ -> 0

let catalog_hash r = r.catalog_hash

let stale r = r.stale

(* Compare every member's last-probed catalog hash against the group's
   modal hash.  Divergence needs corroboration: the modal hash must be
   held by at least two members, so in a two-member split nobody is
   marked (there is no majority to trust) and a lone unprobed member
   never condemns the rest.  Members whose hash is unknown ("") are
   left alone — absence of evidence is not divergence. *)
let mark_divergent t =
  Mutex.protect t.lock (fun () ->
      let counts = Hashtbl.create 8 in
      Array.iter
        (fun r ->
          if r.catalog_hash <> "" then
            Hashtbl.replace counts r.catalog_hash
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.catalog_hash)))
        t.members;
      let modal =
        Hashtbl.fold
          (fun h n best ->
            match best with
            | Some (_, bn) when bn > n -> best
            | Some (bh, bn) when bn = n && bh <= h -> best
            | _ -> Some (h, n))
          counts None
      in
      match modal with
      | Some (h, n) when n >= 2 ->
        Array.iter
          (fun r ->
            if r.catalog_hash <> "" then r.stale <- r.catalog_hash <> h)
          t.members
      | _ ->
        (* no quorum on any hash: clear rather than latch, so a group
           that shrank to one member does not stay Suspect forever *)
        Array.iter (fun r -> r.stale <- false) t.members)

let stale_count t =
  Mutex.protect t.lock (fun () ->
      Array.fold_left (fun acc r -> if r.stale then acc + 1 else acc) 0 t.members)

let all_browned_out t =
  (* Every member's last-known brownout level is above 0: the whole
     group is saturated, and a hedge can only add load somewhere that
     already has too much. *)
  Mutex.protect t.lock (fun () ->
      Array.for_all (fun r -> r.load > 0) t.members)

(* Healthiest first.  Within the Ready tier a rotating cursor spreads
   primaries across the group; every other tier keeps a deterministic
   order (fewest consecutive failures, then soonest re-admission). *)
let rank ?(writes = false) t =
  Mutex.protect t.lock (fun () ->
      let now = Unix.gettimeofday () in
      let n = Array.length t.members in
      t.cursor <- (t.cursor + 1) mod n;
      let tier r =
        match state_at now r with
        | Ready -> 0
        | Probation -> 1
        | Draining -> 2
        | Suspect -> 3
        | Ejected -> 4
      in
      let rotated = Array.init n (fun i -> t.members.((t.cursor + i) mod n)) in
      (* For writes, the write-pressure penalty sorts FIRST: a member
         that would shed or refuse the mutation is useless however
         healthy its read path looks (reads leave the penalty at 0).
         [load] sorts right after the state tier: a browned-out Ready
         member still beats a Draining/Suspect one, but Ready-and-cool
         members take the traffic first.  [staleness] sorts next — a
         member lagging behind its ingestion WAL serves older answers,
         so fresh members take the traffic when states and loads
         tie. *)
      let order =
        Array.mapi
          (fun i r ->
            ( (if writes then write_penalty r else 0),
              tier r,
              r.load,
              r.staleness,
              r.fails,
              r.ejected_until,
              i,
              r ))
          rotated
      in
      Array.sort
        (fun (wa, ta, la, sa, fa, ua, ia, _) (wb, tb, lb, sb, fb, ub, ib, _) ->
          match compare wa wb with
          | 0 -> (
            match compare ta tb with
            | 0 -> (
              match compare la lb with
              | 0 -> (
                match compare sa sb with
                | 0 -> (
                  match compare fa fb with
                  | 0 -> (
                    match compare ua ub with 0 -> compare ia ib | c -> c)
                  | c -> c)
                | c -> c)
              | c -> c)
            | c -> c)
          | c -> c)
        order;
      Array.to_list (Array.map (fun (_, _, _, _, _, _, _, r) -> r) order))

let ready_count t =
  Mutex.protect t.lock (fun () ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun acc r -> match state_at now r with Ready | Probation -> acc + 1 | _ -> acc)
        0 t.members)

let ejected_count t =
  Mutex.protect t.lock (fun () ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun acc r -> if state_at now r = Ejected then acc + 1 else acc)
        0 t.members)

let describe t =
  Mutex.protect t.lock (fun () ->
      let now = Unix.gettimeofday () in
      Array.to_list
        (Array.map
           (fun r ->
             Printf.sprintf "%s=%s served=%d failed=%d%s%s%s" r.path
               (state_name (state_at now r))
               r.served r.failed
               (if r.load > 0 then Printf.sprintf " load=%d" r.load else "")
               (if r.write_state <> "ok" then
                  Printf.sprintf " write_state=%s" r.write_state
                else "")
               (if r.stale then " stale=yes" else ""))
           t.members))

(* ------------------------------------------------------------------ *)
(* Per-group retry budget                                              *)
(* ------------------------------------------------------------------ *)

(* A token bucket that caps hedges + retries as a fraction of recent
   primary traffic.  Every primary request deposits [ratio] tokens
   (capped at [burst]); every hedge or retry withdraws one.  Under a
   healthy group the bucket sits full and every hedge is admitted;
   when the WHOLE group is sick, every request wants retries, demand
   exceeds ratio x traffic, and the bucket runs dry — amplification is
   bounded at [ratio] instead of multiplying a brownout into a storm.
   The bucket starts full so failover works from the first request. *)
module Budget = struct
  type t = {
    lock : Mutex.t;
    ratio : float;
    burst : float;
    mutable tokens : float;
    mutable deposits : int;
    mutable spent : int;
    mutable denied : int;
  }

  let create ~ratio ~burst =
    if ratio < 0.0 then invalid_arg "Budget.create: ratio must be >= 0";
    if burst < 1.0 then invalid_arg "Budget.create: burst must be >= 1";
    {
      lock = Mutex.create ();
      ratio;
      burst;
      tokens = burst;
      deposits = 0;
      spent = 0;
      denied = 0;
    }

  let note_request b =
    Mutex.protect b.lock (fun () ->
        b.deposits <- b.deposits + 1;
        b.tokens <- Float.min b.burst (b.tokens +. b.ratio))

  let try_take b =
    Mutex.protect b.lock (fun () ->
        if b.tokens >= 1.0 then begin
          b.tokens <- b.tokens -. 1.0;
          b.spent <- b.spent + 1;
          true
        end
        else begin
          b.denied <- b.denied + 1;
          false
        end)

  let tokens b = Mutex.protect b.lock (fun () -> b.tokens)

  let spent b = Mutex.protect b.lock (fun () -> b.spent)

  let denied b = Mutex.protect b.lock (fun () -> b.denied)

  let ratio b = b.ratio

  let burst b = b.burst
end
