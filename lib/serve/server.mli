(** The [treesketch serve] runtime: a supervised request loop over a
    resident {!Catalog}.

    Requests and responses follow the line protocol of {!Protocol}.
    Three robustness mechanisms are layered on top of plain dispatch:

    - {e Cooperative cancellation}: every QUERY/ANSWER gets an
      {!Xmldoc.Budget.t} combining the server's caps with the request's
      own (requests may tighten, never widen).  A tripped deadline or
      node cap degrades the evaluation — the response carries the
      partial approximate answer flagged [degraded=<why>] — it never
      aborts the request.
    - {e Supervision}: {!handle_line} is total.  Malformed requests,
      missing synopses and unexpected evaluator exceptions all come
      back as one [error <class> <message>] line plus a structured
      stderr log record; the loop keeps serving.
    - {e Crash-safe catalog}: snapshots are hot-reloaded on change and
      quarantined (previous resident version keeps serving) when
      corrupt; see {!Catalog}.
    - {e Supervised background builds}: BUILD forks a checkpointed
      worker per job (see {!Jobs}); the supervisor is advanced
      non-blockingly on every request line, so serving latency is never
      coupled to build progress.
    - {e Process isolation} (optional): with [pool.workers > 0],
      QUERY/ANSWER evaluate in prefork worker processes (see {!Pool});
      a crash — stack overflow, OOM kill, segfault — costs one request,
      answered [error worker-crash], never the server.  With the pool
      disabled, {!Query_exec.run_guarded} still contains
      [Stack_overflow]/[Out_of_memory] in-process as defense in
      depth.
    - {e Durable live ingestion}: INGEST appends to a per-synopsis
      write-ahead log and acks only after fsync ({!Ingest}); memtables
      flush into delta TreeSketch levels, a background job compacts
      them, and queries over a name with levels evaluate the whole
      stack — in-process even with the pool enabled, because the
      staleness bound tagged on the response is engine state only the
      parent holds.  On restart the WAL replays and re-flushes, so
      every acknowledged ingest survives a kill at any point.  DELETE
      and UPDATE ride the same log as tombstone records: flushed
      levels carry tombstone path predicates that mask matching
      subtrees in older levels until compaction reclaims them.
    - {e Write-pressure guardrails}: every mutation passes
      {!Write_pressure} admission — advisory pacing, shedding with
      [retry-after], and a hard disk watermark under which the server
      goes read-only rather than wedging. *)

type config = {
  limits : Xmldoc.Limits.t;  (** bounds every snapshot load *)
  deadline : float option;
      (** default per-request deadline, seconds ([None] = none) *)
  max_answer_nodes : int;  (** cap on answer/tree nodes per request *)
  max_work : int;  (** cap on evaluation work ticks per request *)
  max_inflight : int;  (** socket connections before shedding load *)
  auto_reload : bool;
      (** refresh the catalog before each catalog-touching request *)
  drain_deadline : float;
      (** seconds a drain waits for in-flight requests before severing
          what remains (see {!request_drain}) *)
  jobs : Jobs.config;  (** background-build supervision knobs *)
  pool : Pool.config;
      (** query worker pool ({!Pool}); only the pool-specific knobs are
          read — its caps ([limits], [deadline], [max_answer_nodes],
          [max_work], [auto_reload]) are overridden with the server's
          own at {!create}, so the two read paths cannot diverge.
          [pool.workers = 0] (the default) evaluates in-process. *)
  brownout : Overload.config option;
      (** adaptive overload degradation ({!Overload}): when set, the
          read path steps a server-wide degradation level under
          pressure, answers from coarser ladder tiers (tagged
          [tier=<k>/<n> budget=<bytes>]), reports [load=<level>] in
          HEALTH, and refuses only requests whose deadline cannot be
          met even at the coarsest tier.  [None] (the default) serves
          every request from the finest tier — although an explicit
          [-tier=] request option is still honored. *)
  scrub_interval : float;
      (** seconds between background integrity scrubs ({!Scrub}): each
          period forks a scrub worker through the job supervisor,
          replays its report as [scrub-*] quarantines, sweeps orphaned
          temp files, and — with [peers] configured — pulls repairs.
          [0] (the default) disables the scrubber thread; the SCRUB
          verb stays available on demand. *)
  peers : string list;
      (** socket paths of replica peers to pull snapshot repairs from
          ({!Repair}); empty = repair off (REPAIR answers
          [error bad-request]) *)
  tmp_sweep_age : float;
      (** minimum age (seconds) before an orphaned [.tmp] staging file
          is swept — must exceed the longest plausible atomic-write
          window, because live build workers stage under the same
          naming *)
  repair_timeout : float;
      (** per-peer-connection budget (seconds) of a repair pull *)
  flush_records : int;
      (** memtable records per flushed delta level ({!Ingest}): an
          INGEST that fills the memtable triggers an inline flush *)
  level_budget : int;
      (** byte budget a delta level (and a compacted level) is
          compressed under *)
  compact_levels : int;
      (** level count that triggers a background compaction job
          ({!Jobs.submit_compact}); 0 disables auto-compaction —
          flushes still accumulate levels *)
  write_pressure : Write_pressure.config;
      (** write-side admission control ({!Write_pressure}): every
          mutation verb (INGEST/DELETE/UPDATE) passes its verdict —
          paced acks carry [backpressure=<ms>], sheds answer
          [error ingest-deferred retry-after=<ms>], and under the hard
          disk watermark all mutations are refused
          ([error readonly ...]) while reads, scrub and repair keep
          working.  [serve --disk-watermark] sets the hard watermark
          (soft = 2x). *)
  disk_free : (unit -> int option) option;
      (** test override of the disk-free probe; [None] (the default)
          shells out to [df -P -k] *)
}

val default_config : config
(** 5 s deadline, 100_000 answer nodes, 10 M work ticks, 8 in-flight
    connections, auto-reload on, 5 s drain deadline,
    {!Jobs.default_config} builds, scrubber off, no peers, 60 s tmp
    sweep age, 5 s repair timeout, 64-record flushes into 4096-byte
    levels, compaction at 4 levels,
    {!Write_pressure.default_config} admission (disk watermarks
    off). *)

type stats = {
  mutable served : int;  (** request lines handled (including errors) *)
  mutable errors : int;  (** [error ...] responses and shed connections *)
  mutable degraded : int;  (** degraded or truncated answers *)
  mutable refused_deadline : int;
      (** requests refused by deadline-aware admission: their remaining
          deadline was below the coarsest-tier latency estimate *)
}

type t

val create : ?log:(string -> unit) -> ?config:config -> string -> t
(** [create dir] builds a server over the snapshot directory [dir] and
    performs the initial catalog refresh.  [log] receives structured
    one-line records ([event=... key=value ...]); default stderr. *)

val stats : t -> stats

val catalog : t -> Catalog.t

val jobs : t -> Jobs.t
(** The background-build supervisor (exposed for tests: the chaos
    harness kills worker pids and corrupts checkpoints through it). *)

val pool : t -> Pool.t
(** The query worker pool (exposed for tests and HEALTH: kill counts,
    quarantine contents, fork totals). *)

val overload : t -> Overload.t option
(** The brownout controller, present iff [config.brownout] was set
    (exposed for tests and benches: level and pressure inspection). *)

val write_pressure : t -> Write_pressure.t
(** The write-side admission controller (exposed for tests and benches:
    state and pressure inspection). *)

val handle_line : t -> string -> string * bool
(** [handle_line t line] is one supervised request: the response line
    (never containing a newline) and whether the client asked to QUIT.
    Total — never raises. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve requests line-by-line until EOF, QUIT, a broken channel or a
    requested drain.  This is the stdio front end, and what tests drive
    over a pipe. *)

(** {2 Graceful shutdown}

    A {e drain} is the orderly half of a rolling restart: stop taking
    new work, finish (and answer) everything already accepted, reap
    build workers — keeping their checkpoints so the next server
    generation resumes them — flush final stats, and return so the
    process can exit 0. *)

val draining : t -> bool

val request_drain : t -> unit
(** Flip the server into draining mode.  Async-signal-safe (a single
    flag store); the serving loops observe it within one poll tick.
    Idempotent. *)

val install_drain_signals : t -> unit
(** Route SIGTERM and SIGINT to {!request_drain} so [kill <pid>] (or
    Ctrl-C) triggers a graceful drain instead of killing the process
    mid-request. *)

(** Bounded-in-flight admission control, exposed for unit tests. *)
module Admission : sig
  type t

  val create : int -> t

  val try_acquire : t -> bool
  (** [false] = at capacity, shed the work. *)

  val release : t -> unit
  val in_flight : t -> int
  val capacity : t -> int
end

val serve_socket : ?backlog:int -> t -> path:string -> unit
(** Accept loop on a Unix domain socket at [path] (an existing socket
    file is replaced).  Each connection is served by a thread;
    connections beyond [max_inflight] are answered with a single
    [error overloaded ...] line and closed.  There is no server-wide
    request lock: every shared subsystem locks internally, and only
    in-process evaluation (pool disabled) is serialized — read-only
    verbs (PING, HEALTH, STAT, LIST, JOBS) never queue behind a slow
    query.

    Returns only after a drain ({!request_drain} or an installed
    signal): the listener is closed and unlinked, in-flight requests
    get their responses (bounded by [config.drain_deadline]),
    stragglers are severed, build workers are reaped
    ({!Jobs.drain} — checkpoints kept), and a final [event=drained]
    stats record is logged.  The caller then exits 0. *)
