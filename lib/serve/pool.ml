type config = {
  workers : int;
  limits : Xmldoc.Limits.t;
  deadline : float option;
  max_answer_nodes : int;
  max_work : int;
  max_heap_words : int;
  auto_reload : bool;
  watchdog_grace : float;
  watchdog_floor : float;
  poison_threshold : int;
  backoff_base : float;
  backoff_cap : float;
  chaos_marker : string option;
}

let default_config =
  {
    workers = 0;
    limits = Xmldoc.Limits.default;
    deadline = Some 5.0;
    max_answer_nodes = 100_000;
    max_work = 10_000_000;
    max_heap_words = max_int;
    auto_reload = true;
    watchdog_grace = 2.0;
    watchdog_floor = 30.0;
    poison_threshold = 3;
    backoff_base = 0.05;
    backoff_cap = 2.0;
    chaos_marker = None;
  }

type stats = {
  total : int;
  live : int;
  busy : int;
  forks : int;
  kills : int;
  poisoned : int;
  quarantined : int;
}

type worker = {
  id : int;
  mutable pid : int;  (* -1 = slot empty (dead / never forked) *)
  mutable to_child : Unix.file_descr;
  mutable from_child : Unix.file_descr;
  mutable busy : bool;
  mutable consecutive_crashes : int;  (* resets on a served request *)
  mutable not_before : float;  (* earliest respawn time (backoff gate) *)
}

type t = {
  config : config;
  dir : string;
  log : string -> unit;
  lock : Mutex.t;
  slots : worker array;
  poison : (string, int) Hashtbl.t;  (* (name NUL query_key) -> crash count *)
  mutable forks : int;
  mutable kills : int;
  mutable poisoned_count : int;
  mutable shutting_down : bool;
}

let log_event t fmt = Printf.ksprintf t.log fmt

let now () = Unix.gettimeofday ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Worker child                                                        *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  ||
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* Deterministic crash provocation for the chaos tests.  Each marker
   reproduces one worker failure mode — [:exit] is the
   segfault/OOM-kill class (sudden death with no response), [:hang] a
   wedged evaluator that never ticks its budget, [:stackoverflow] the
   runaway-recursion class, raised directly rather than recursed into
   being: OCaml 5 native stacks grow on demand for many seconds before
   the runtime gives up, which would hit the hard watchdog first.  The
   raise exercises the same containment path (caught below, poison
   accounting, no kill) a real overflow would. *)
let chaos_trip config line =
  match config.chaos_marker with
  | None -> ()
  | Some m ->
    if contains line (m ^ ":exit") then Unix._exit 70;
    if contains line (m ^ ":hang") then
      while true do
        Unix.sleepf 3600.0
      done;
    if contains line (m ^ ":stackoverflow") then raise Stack_overflow

let worker_caps config =
  {
    Query_exec.deadline = config.deadline;
    max_answer_nodes = config.max_answer_nodes;
    max_work = config.max_work;
    max_heap_words = config.max_heap_words;
  }

(* The child's request handler mirrors the server's totality contract:
   one structured line out for every line in, no exception escapes to
   the loop.  Stack_overflow / Out_of_memory anywhere in handling —
   including the chaos recursion — render as a contained worker-crash
   response rather than killing the child. *)
let worker_handle config caps catalog line =
  let eval kind (opts : Protocol.opts) name q =
    if config.auto_reload then ignore (Catalog.refresh catalog : Catalog.event list);
    match Catalog.find catalog name with
    | Some (entry : Catalog.entry) ->
      let budget = Query_exec.budget_for caps opts in
      (* The parent's degradation level arrives in-band as [-tier=]
         (see {!Protocol.with_tier}); level 0 here means only the
         request's own ask applies. *)
      let synopsis, tier = Query_exec.select_tier entry opts ~level:0 in
      (Query_exec.run_guarded ?tier ~budget kind synopsis q).response
    | None -> (
      match Catalog.fault_for catalog name with
      | Some fault -> Protocol.fault_line fault
      | None ->
        Protocol.error_line ~cls:"not-found"
          (Printf.sprintf "no synopsis %S in the catalog" name))
  in
  match
    chaos_trip config line;
    Protocol.parse line
  with
  | Error reason -> Protocol.error_line ~cls:"bad-request" reason
  | Ok (Query (opts, name, q)) -> eval Query_exec.Query opts name q
  | Ok (Answer (opts, name, q)) -> eval Query_exec.Answer opts name q
  | Ok _ ->
    Protocol.error_line ~cls:"bad-request" "pool workers serve only QUERY and ANSWER"
  | exception Stack_overflow ->
    Protocol.fault_line
      (Xmldoc.Fault.Worker_crash
         { reason = "stack overflow during evaluation (contained)" })
  | exception Out_of_memory ->
    Gc.compact ();
    Protocol.fault_line
      (Xmldoc.Fault.Worker_crash
         { reason = "out of memory during evaluation (contained)" })
  | exception e ->
    Protocol.error_line ~cls:"internal" (Printexc.to_string e)

let worker_main config dir req_r resp_w =
  (* Workers never run the parent's handlers. *)
  (try Sys.set_signal Sys.sigterm Sys.Signal_default
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_default
   with Invalid_argument _ | Sys_error _ -> ());
  (* A private, read-only view of the catalog: loading happens in the
     child so a snapshot that crashes the loader costs a worker, not
     the server. *)
  let catalog = Catalog.create ~limits:config.limits dir in
  ignore (Catalog.refresh catalog : Catalog.event list);
  let caps = worker_caps config in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> Unix._exit 0
    | exception Sys_error _ -> Unix._exit 0
    | line -> (
      let response = worker_handle config caps catalog line in
      match
        output_string oc response;
        output_char oc '\n';
        flush oc
      with
      | () -> loop ()
      | exception Sys_error _ -> Unix._exit 0)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Parent: spawn / kill / backoff                                      *)
(* ------------------------------------------------------------------ *)

let backoff_delay config attempt =
  Float.min config.backoff_cap
    (config.backoff_base *. (2.0 ** float_of_int (min attempt 16)))

(* Called under [t.lock].  Raises [Unix.Unix_error] when the fork (or
   the injected {!Xmldoc.Io_fault.Fork} fault) fails — callers turn
   that into a backoff, never a crash. *)
let spawn_u t w =
  Xmldoc.Io_fault.tap Xmldoc.Io_fault.Fork ~path:t.dir;
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | exception e ->
    List.iter close_quietly [ req_r; req_w; resp_r; resp_w ];
    raise e
  | 0 ->
    (* Child: drop the parent's ends, and the parent-side pipes of
       every sibling — otherwise a sibling holding a copy of our
       request pipe's write end would keep us from ever seeing EOF. *)
    close_quietly req_w;
    close_quietly resp_r;
    Array.iter
      (fun (sib : worker) ->
        if sib.pid >= 0 && sib.id <> w.id then begin
          close_quietly sib.to_child;
          close_quietly sib.from_child
        end)
      t.slots;
    (* [worker_main] only ever leaves via [Unix._exit]; 125 is the
       can't-even-start code, same convention as the build workers. *)
    (try worker_main t.config t.dir req_r resp_w
     with _ -> Unix._exit 125)
  | pid ->
    close_quietly req_r;
    close_quietly resp_w;
    Unix.set_close_on_exec req_w;
    Unix.set_close_on_exec resp_r;
    w.pid <- pid;
    w.to_child <- req_w;
    w.from_child <- resp_r;
    w.busy <- false;
    t.forks <- t.forks + 1;
    log_event t "event=pool-spawn worker=%d pid=%d" w.id pid

(* Called under [t.lock]: lazily refork empty slots whose backoff has
   elapsed.  A failing fork pushes the slot's [not_before] further out
   instead of raising. *)
let maybe_respawn_u t =
  if not t.shutting_down then
    Array.iter
      (fun w ->
        if w.pid < 0 && now () >= w.not_before then begin
          match spawn_u t w with
          | () -> ()
          | exception Unix.Unix_error (e, _, _) ->
            w.consecutive_crashes <- w.consecutive_crashes + 1;
            w.not_before <- now () +. backoff_delay t.config w.consecutive_crashes;
            log_event t "event=pool-fork-failed worker=%d errno=%s retry_in=%.2fs"
              w.id (Unix.error_message e)
              (backoff_delay t.config w.consecutive_crashes)
        end)
      t.slots

(* Called under [t.lock].  SIGKILL is safe: workers are pure readers
   over their own catalog view; there is nothing graceful to lose. *)
let kill_u t w ~reason =
  if w.pid >= 0 then begin
    let pid = w.pid in
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
     with Unix.Unix_error _ -> ());
    close_quietly w.to_child;
    close_quietly w.from_child;
    w.pid <- -1;
    w.busy <- false;
    w.consecutive_crashes <- w.consecutive_crashes + 1;
    w.not_before <- now () +. backoff_delay t.config w.consecutive_crashes;
    t.kills <- t.kills + 1;
    log_event t "event=pool-kill worker=%d pid=%d reason=%s" w.id pid reason
  end

(* ------------------------------------------------------------------ *)
(* Poison-pill quarantine                                              *)
(* ------------------------------------------------------------------ *)

let poison_key ~name ~query_key = name ^ "\x00" ^ query_key

(* Under [t.lock]. *)
let record_poison_u t ~name ~query_key =
  let key = poison_key ~name ~query_key in
  let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.poison key) in
  Hashtbl.replace t.poison key count;
  if count = t.config.poison_threshold then
    log_event t "event=pool-quarantine name=%s crashes=%d query=%S" name count
      query_key

let poisoned_response t ~name ~query_key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.poison (poison_key ~name ~query_key) with
      | Some n when n >= t.config.poison_threshold ->
        t.poisoned_count <- t.poisoned_count + 1;
        Some
          (Protocol.error_line ~cls:"poisoned"
             (Printf.sprintf
                "query quarantined on synopsis %S after killing %d workers" name
                n))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Parent: request I/O with a hard watchdog                            *)
(* ------------------------------------------------------------------ *)

let write_all fd s ~give_up =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then Ok ()
    else begin
      let timeout = give_up -. now () in
      if timeout <= 0.0 then Error `Timeout
      else
        match Unix.select [] [ fd ] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error _ -> Error `Io
        | _, [], _ -> Error `Timeout
        | _ -> (
          match Unix.write fd b off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error (EINTR, _, _) -> go off
          | exception Unix.Unix_error _ -> Error `Io)
    end
  in
  go 0

let read_line fd ~give_up =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let timeout = give_up -. now () in
    if timeout <= 0.0 then `Timeout
    else
      match Unix.select [ fd ] [] [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> `Eof
      | [], _, _ -> `Timeout
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> `Eof
        | 0 -> `Eof
        | n -> (
          match Bytes.index_from_opt chunk 0 '\n' with
          | Some i when i < n ->
            Buffer.add_subbytes buf chunk 0 i;
            `Line (Buffer.contents buf)
          | _ ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()))
  in
  go ()

let watchdog_for t (opts : Protocol.opts) =
  let relative =
    match (t.config.deadline, opts.deadline) with
    | None, None -> t.config.watchdog_floor
    | None, Some r -> r
    | Some c, None -> c
    | Some c, Some r -> Float.min c r
  in
  Float.max 0.0 relative +. t.config.watchdog_grace

(* Wait (bounded) for a free live worker; respawn empty slots along the
   way.  Polling keeps this simple and bounded — slots free up either
   by requests completing or by their watchdogs killing wedged
   workers, both within a watchdog period. *)
let acquire t ~give_up =
  let rec go () =
    Mutex.lock t.lock;
    if t.shutting_down then begin
      Mutex.unlock t.lock;
      None
    end
    else begin
      maybe_respawn_u t;
      let found = Array.find_opt (fun w -> w.pid >= 0 && not w.busy) t.slots in
      match found with
      | Some w ->
        w.busy <- true;
        Mutex.unlock t.lock;
        Some w
      | None ->
        Mutex.unlock t.lock;
        if now () >= give_up then None
        else begin
          Thread.delay 0.003;
          go ()
        end
    end
  in
  go ()

let response_class resp =
  match String.split_on_char ' ' resp with
  | "error" :: cls :: _ -> Some cls
  | _ -> None

let exec t ~name ~query_key ~opts ~line =
  if Array.length t.slots = 0 then
    Protocol.error_line ~cls:"overloaded" "query pool is disabled"
  else
  match poisoned_response t ~name ~query_key with
  | Some response -> response
  | None ->
    let watchdog = watchdog_for t opts in
    let give_up = now () +. watchdog in
    (match acquire t ~give_up with
    | None ->
      Protocol.error_line ~cls:"overloaded"
        (if t.shutting_down then "query pool is shut down"
         else
           Printf.sprintf "all %d query workers busy for %.2fs"
             t.config.workers watchdog)
    | Some w ->
      let crash reason =
        Mutex.protect t.lock (fun () ->
            kill_u t w ~reason;
            record_poison_u t ~name ~query_key);
        Protocol.fault_line (Xmldoc.Fault.Worker_crash { reason })
      in
      (match write_all w.to_child (line ^ "\n") ~give_up with
      | Error `Timeout ->
        crash (Printf.sprintf "worker %d wedged before reading the request" w.id)
      | Error `Io ->
        crash (Printf.sprintf "worker %d died before reading the request" w.id)
      | Ok () -> (
        match read_line w.from_child ~give_up with
        | `Timeout ->
          crash
            (Printf.sprintf
               "hard watchdog (%.2fs) expired mid-evaluation; worker killed"
               watchdog)
        | `Eof ->
          crash "worker died mid-evaluation (crash, OOM kill, or signal)"
        | `Line response ->
          Mutex.protect t.lock (fun () ->
              w.busy <- false;
              w.consecutive_crashes <- 0;
              (* A contained crash (the worker caught Stack_overflow /
                 Out_of_memory itself) counts toward quarantine too:
                 the pair is just as poisonous, the worker merely got
                 lucky enough to say so. *)
              if response_class response = Some "worker-crash" then
                record_poison_u t ~name ~query_key);
          response)))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(log = prerr_endline) config dir =
  let t =
    {
      config;
      dir;
      log;
      lock = Mutex.create ();
      slots =
        Array.init (max 0 config.workers) (fun id ->
            {
              id;
              pid = -1;
              to_child = Unix.stdin;
              from_child = Unix.stdin;
              busy = false;
              consecutive_crashes = 0;
              not_before = 0.0;
            });
      poison = Hashtbl.create 8;
      forks = 0;
      kills = 0;
      poisoned_count = 0;
      shutting_down = false;
    }
  in
  Mutex.protect t.lock (fun () -> maybe_respawn_u t);
  if config.workers > 0 then
    log_event t "event=pool-started workers=%d live=%d" config.workers
      (Array.fold_left (fun acc w -> if w.pid >= 0 then acc + 1 else acc) 0 t.slots);
  t

let enabled t = Array.length t.slots > 0

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        total = Array.length t.slots;
        live =
          Array.fold_left (fun acc w -> if w.pid >= 0 then acc + 1 else acc) 0 t.slots;
        busy = Array.fold_left (fun acc w -> if w.busy then acc + 1 else acc) 0 t.slots;
        forks = t.forks;
        kills = t.kills;
        poisoned = t.poisoned_count;
        quarantined =
          Hashtbl.fold
            (fun _ n acc -> if n >= t.config.poison_threshold then acc + 1 else acc)
            t.poison 0;
      })

let poisoned_pairs t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun key n acc ->
          if n >= t.config.poison_threshold then
            match String.index_opt key '\x00' with
            | Some i ->
              ( String.sub key 0 i,
                String.sub key (i + 1) (String.length key - i - 1),
                n )
              :: acc
            | None -> acc
          else acc)
        t.poison []
      |> List.sort compare)

let shutdown t =
  Mutex.protect t.lock (fun () ->
      t.shutting_down <- true;
      let killed = ref 0 in
      Array.iter
        (fun w ->
          if w.pid >= 0 then begin
            incr killed;
            if w.busy then begin
              (* The owning exec thread is mid-request on this worker's
                 pipes: SIGKILL the child but leave fd teardown and the
                 waitpid to that thread's crash path, so we never close
                 a descriptor out from under a concurrent select. *)
              try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ()
            end
            else begin
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
              (try ignore (Unix.waitpid [] w.pid : int * Unix.process_status)
               with Unix.Unix_error _ -> ());
              close_quietly w.to_child;
              close_quietly w.from_child;
              w.pid <- -1
            end
          end)
        t.slots;
      if Array.length t.slots > 0 then
        log_event t "event=pool-shutdown killed=%d" !killed;
      !killed)
