(* The brownout controller: turns observed serving pressure into a
   server-wide degradation level.

   Pressure has two components, and either alone can saturate a server:
   per-request latency creeping toward the deadline budget (slow
   queries, slow disks), and queue depth (a burst of cheap queries all
   parked on the eval lock or the admission semaphore).  Both are
   folded into one dimensionless number

     pressure = max (ewma_latency / target_latency)
                    (queue_depth / depth_high)

   and the level steps by one — never jumps — when the pressure crosses
   the high watermark, steps back down below the low watermark, and
   holds for at least [dwell] seconds between changes (hysteresis: a
   single slow request must not flap the whole server between tiers).

   A second, separate EWMA tracks the latency of requests served at the
   COARSEST tier; it is the basis of deadline-aware admission: a
   request is refused only when its remaining deadline cannot be met
   even by the cheapest answer the server knows how to give. *)

type config = {
  max_level : int;
  target_latency : float;
  depth_high : int;
  high : float;
  low : float;
  alpha : float;
  dwell : float;
}

let default_config =
  {
    max_level = 3;
    target_latency = 0.050;
    depth_high = 8;
    high = 1.0;
    low = 0.5;
    alpha = 0.3;
    dwell = 0.25;
  }

type t = {
  config : config;
  lock : Mutex.t;
  mutable ewma : float;  (* smoothed per-request latency, seconds *)
  mutable coarse_ewma : float;  (* smoothed coarsest-tier latency *)
  mutable coarse_samples : int;
  mutable samples : int;
  mutable level : int;
  mutable pressure : float;
  mutable changed_at : float;  (* last level step, for dwell *)
}

let create ?(config = default_config) () =
  if config.max_level < 0 then invalid_arg "Overload: max_level must be >= 0";
  if config.target_latency <= 0.0 then
    invalid_arg "Overload: target_latency must be positive";
  if config.depth_high < 1 then invalid_arg "Overload: depth_high must be >= 1";
  if not (config.low < config.high) then
    invalid_arg "Overload: low watermark must be below high";
  if config.alpha <= 0.0 || config.alpha > 1.0 then
    invalid_arg "Overload: alpha must be in (0, 1]";
  {
    config;
    lock = Mutex.create ();
    ewma = 0.0;
    coarse_ewma = 0.0;
    coarse_samples = 0;
    samples = 0;
    level = 0;
    pressure = 0.0;
    changed_at = neg_infinity;
  }

let blend alpha old sample n =
  if n = 0 then sample else (alpha *. sample) +. ((1.0 -. alpha) *. old)

let observe ?(coarsest = false) t ~queue_depth ~latency =
  let c = t.config in
  Mutex.protect t.lock @@ fun () ->
  t.ewma <- blend c.alpha t.ewma latency t.samples;
  t.samples <- t.samples + 1;
  if coarsest then begin
    t.coarse_ewma <- blend c.alpha t.coarse_ewma latency t.coarse_samples;
    t.coarse_samples <- t.coarse_samples + 1
  end;
  t.pressure <-
    Float.max
      (t.ewma /. c.target_latency)
      (float_of_int queue_depth /. float_of_int c.depth_high);
  let now = Xmldoc.Limits.now () in
  if now -. t.changed_at >= c.dwell then
    if t.pressure >= c.high && t.level < c.max_level then begin
      t.level <- t.level + 1;
      t.changed_at <- now
    end
    else if t.pressure <= c.low && t.level > 0 then begin
      t.level <- t.level - 1;
      t.changed_at <- now
    end

let level t = Mutex.protect t.lock (fun () -> t.level)

let pressure t = Mutex.protect t.lock (fun () -> t.pressure)

(* Refuse only what cannot be served even at the coarsest tier.  With
   no coarse samples yet there is nothing to compare against — admit
   and let the measurement happen (optimism is safe: the request will
   degrade, not block the server). *)
let admit t ~deadline =
  Mutex.protect t.lock @@ fun () ->
  t.coarse_samples = 0 || deadline >= t.coarse_ewma

let describe t =
  Mutex.protect t.lock @@ fun () ->
  Printf.sprintf "level=%d pressure=%.2f ewma=%.1fms coarse=%.1fms" t.level
    t.pressure (t.ewma *. 1000.0)
    (t.coarse_ewma *. 1000.0)
