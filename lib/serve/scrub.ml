(* Snapshot integrity scrubbing: the shared fsck core.

   One verification routine — read the raw bytes through the fault
   taps, re-check every CRC (version-2/3 trailers, version-4 ladder
   manifest and per-tier checksums), re-run [Synopsis.validate] on
   every decoded tier — reused by four callers:

   - the catalog's load path (which computes the same content hash and
     params fingerprint at load time);
   - the background scrub job forked by the {!Jobs} supervisor, which
     walks the directory and writes a report the serving parent applies
     as quarantines;
   - the synchronous SCRUB protocol verb;
   - the [treesketch verify] offline fsck subcommand.

   The content hash is the CRC-32 of the file's raw bytes: two replicas
   hold the same snapshot iff their hashes match, and a byte-identical
   peer repair restores the hash exactly.  The params fingerprint hashes
   only the build {e shape} (plain vs ladder, tier budgets) — two
   members that built the same name with different budgets diverge in
   fingerprint even when bit-rot is absent. *)

let snapshot_extension = ".ts"

(* Staging files left by a crash mid-[save_atomic]: the
   [Filename.temp_file ~temp_dir:dir ".treesketch" ".tmp"] naming every
   atomic writer in this repository uses. *)
let is_tmp_orphan file =
  let prefix = ".treesketch" and suffix = ".tmp" in
  String.length file > String.length prefix + String.length suffix
  && String.sub file 0 (String.length prefix) = prefix
  && String.sub file
       (String.length file - String.length suffix)
       (String.length suffix)
     = suffix

type info = {
  v_bytes : int;
  v_crc : string;  (* 8-hex CRC-32 of the raw file bytes *)
  v_fp : string;  (* 8-hex build-params fingerprint *)
  v_tiers : int;  (* ladder rungs; 1 for a plain snapshot *)
}

let hex_of_string s = Sketch.Crc32.to_hex (Sketch.Crc32.string s)

let fingerprint (loaded : Sketch.Serialize.loaded) =
  let shape =
    match loaded with
    | Sketch.Serialize.Single _ -> "single"
    | Sketch.Serialize.Ladder tiers ->
      "ladder:"
      ^ String.concat ","
          (List.map (fun (b, _) -> string_of_int b) (Array.to_list tiers))
  in
  hex_of_string shape

let tier_count = function
  | Sketch.Serialize.Single _ -> 1
  | Sketch.Serialize.Ladder tiers -> Array.length tiers

(* Verify already-read bytes: the parse IS the integrity check — every
   CRC is re-computed and every tier re-validated by
   [of_any_string_res]. *)
let verify_string ?limits text =
  match Sketch.Serialize.of_any_string_res ?limits text with
  | Error f -> Error f
  | Ok loaded ->
    Ok
      {
        v_bytes = String.length text;
        v_crc = hex_of_string text;
        v_fp = fingerprint loaded;
        v_tiers = tier_count loaded;
      }

let verify_file ?limits path =
  match Sketch.Serialize.load_raw_res ?limits path with
  | Error f -> Error f
  | Ok text -> (
    match verify_string ?limits text with
    | Ok info -> Ok info
    | Error f -> Error (Xmldoc.Fault.with_path path f))

type file_report = {
  f_name : string;
  f_path : string;
  f_result : (info, Xmldoc.Fault.t) result;
}

(* Walk [dir] and verify every snapshot, in name order.  [Error] only
   when the directory itself cannot be scanned — per-file corruption is
   data, not failure. *)
let scan ?limits dir =
  match
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path:dir;
    Sys.readdir dir
  with
  | exception Sys_error message ->
    Error (Xmldoc.Fault.Io_error { path = dir; message })
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Xmldoc.Fault.Io_error
         { path = dir; message = fn ^ ": " ^ Unix.error_message e })
  | files ->
    Array.sort String.compare files;
    let ts_reports =
      Array.to_list files
      |> List.filter_map (fun file ->
             if not (Filename.check_suffix file snapshot_extension) then None
             else
               let name = Filename.chop_suffix file snapshot_extension in
               let path = Filename.concat dir file in
               match
                 Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Stat ~path;
                 Unix.stat path
               with
               | exception Unix.Unix_error _ -> None (* unlinked mid-scan *)
               | st when st.Unix.st_kind <> Unix.S_REG -> None
               | _ ->
                 Some { f_name = name; f_path = path; f_result = verify_file ?limits path })
    in
    (* Live-ingestion state rots too.  Verify each level manifest (CRC
       trailer + grammar) and every delta file it lists against the
       manifest's per-level crc, plus each WAL's frame CRCs — a torn
       WAL tail is a normal crash artifact that replay truncates, NOT
       rot, so it passes.  Only failures are reported; the serving
       parent replays them as quarantines exactly like snapshot rot
       (the resident level stack keeps serving). *)
    let ingest_reports =
      Array.to_list files
      |> List.filter_map (fun file ->
             let path = Filename.concat dir file in
             match Ingest.manifest_name file with
             | Some name -> (
               let result =
                 match Ingest.read_manifest ?limits ~dir ~name () with
                 | Error f -> Error f
                 | Ok m ->
                   let rec check = function
                     | [] -> Ok ()
                     | e :: rest -> (
                       match Ingest.load_level ?limits ~dir e with
                       | Error f -> Error f
                       | Ok _ -> check rest)
                   in
                   check m.Ingest.entries
               in
               match result with
               | Ok () -> None
               | Error f ->
                 Some { f_name = name; f_path = path; f_result = Error f })
             | None -> (
               match Wal.wal_name file with
               | Some name -> (
                 match Wal.scan ?limits path with
                 | Ok _ -> None
                 | Error f ->
                   Some { f_name = name; f_path = path; f_result = Error f })
               | None -> None))
    in
    Ok (ts_reports @ ingest_reports)

(* ------------------------------------------------------------------ *)
(* Orphaned temp-file sweep                                            *)
(* ------------------------------------------------------------------ *)

(* Remove [.treesketch*.tmp] staging files abandoned by a crash
   mid-atomic-write.  Age-gated: a LIVE writer (a build worker
   publishing, a repair installing) also stages under this pattern, so
   only temps older than [max_age] seconds are orphans — a crashed
   writer's temp only gets older, while a live writer's is seconds old.
   Returns the swept file names (not paths), sorted. *)
let sweep_tmp ?(max_age = 60.0) dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.sort String.compare files;
    let now = Unix.gettimeofday () in
    Array.to_list files
    |> List.filter_map (fun file ->
           if not (is_tmp_orphan file) then None
           else
             let path = Filename.concat dir file in
             match
               Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Stat ~path;
               Unix.stat path
             with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind <> Unix.S_REG -> None
             | st when now -. st.Unix.st_mtime < max_age -> None
             | _ -> (
               match
                 (* temp-file cleanup is itself an injectable fault
                    point: a sweep that cannot unlink leaves the orphan
                    for the next sweep instead of failing the caller *)
                 Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Close ~path;
                 Sys.remove path
               with
               | () -> Some file
               | exception (Sys_error _ | Unix.Unix_error _) -> None))

(* Unreferenced level delta files: a crash after a compaction's
   manifest swap but before its input deletion — or between a level
   write and the swap that would have listed it — leaves
   [.name.l<gen>.delta] files no manifest references.  Replay ignores
   them; this sweep removes them.  Age-gated like the tmp sweep: a live
   flush/compaction writes its level file moments before the swap that
   references it, so only old unreferenced files are orphans.  An
   unreadable manifest pins every level of its name — never sweep what
   a repaired manifest may still list. *)
let sweep_levels ?(max_age = 60.0) dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.sort String.compare files;
    let referenced = Hashtbl.create 8 in
    let pinned = Hashtbl.create 4 in
    Array.iter
      (fun file ->
        match Ingest.manifest_name file with
        | None -> ()
        | Some name -> (
          match Ingest.read_manifest ~dir ~name () with
          | Error _ -> Hashtbl.replace pinned name ()
          | Ok m ->
            List.iter
              (fun (e : Ingest.level_info) ->
                Hashtbl.replace referenced (name, e.Ingest.gen) ())
              m.Ingest.entries))
      files;
    let now = Unix.gettimeofday () in
    Array.to_list files
    |> List.filter_map (fun file ->
           match Ingest.level_name file with
           | None -> None
           | Some (name, gen)
             when Hashtbl.mem referenced (name, gen) || Hashtbl.mem pinned name
             ->
             None
           | Some _ -> (
             let path = Filename.concat dir file in
             match
               Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Stat ~path;
               Unix.stat path
             with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind <> Unix.S_REG -> None
             | st when now -. st.Unix.st_mtime < max_age -> None
             | _ -> (
               match
                 Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Close ~path;
                 Sys.remove path
               with
               | () -> Some file
               | exception (Sys_error _ | Unix.Unix_error _) -> None)))

(* ------------------------------------------------------------------ *)
(* Scrub-job report file                                               *)
(* ------------------------------------------------------------------ *)

(* The forked scrub worker cannot touch the parent's resident catalog;
   it writes its findings to a hidden report file (atomic rename, so
   the parent never reads a torn report) which the parent replays as
   quarantine decisions.  One line per snapshot:

     ok <name> bytes=<n> crc=<hex> fp=<hex> tiers=<k>
     corrupt <name> class=<class> msg=<flattened message>
*)

let report_path dir = Filename.concat dir ".scrub.report"

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let render_report reports =
  String.concat ""
    (List.map
       (fun r ->
         match r.f_result with
         | Ok i ->
           Printf.sprintf "ok %s bytes=%d crc=%s fp=%s tiers=%d\n" r.f_name
             i.v_bytes i.v_crc i.v_fp i.v_tiers
         | Error f ->
           Printf.sprintf "corrupt %s class=%s msg=%s\n" r.f_name
             (Xmldoc.Fault.class_name f)
             (one_line (Xmldoc.Fault.to_string f)))
       reports)

let write_report dir reports =
  Sketch.Serialize.write_atomic (report_path dir) (render_report reports)

type reported =
  | Report_ok of info
  | Report_corrupt of { r_class : string; r_msg : string }

(* Tolerant reader: unparseable lines are dropped (a torn or stale
   report quarantines nothing — scrubbing is advisory, the next period
   rescans), a missing report reads as [None]. *)
let read_report dir =
  let path = report_path dir in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception (Sys_error _ | End_of_file) -> None
  | text ->
    let kv prefix tok =
      if
        String.length tok > String.length prefix
        && String.sub tok 0 (String.length prefix) = prefix
      then Some (String.sub tok (String.length prefix)
                   (String.length tok - String.length prefix))
      else None
    in
    Some
      (List.filter_map
         (fun line ->
           match String.split_on_char ' ' (String.trim line) with
           | "ok" :: name :: bytes :: crc :: fp :: tiers :: [] -> (
             match
               ( Option.bind (kv "bytes=" bytes) int_of_string_opt,
                 kv "crc=" crc,
                 kv "fp=" fp,
                 Option.bind (kv "tiers=" tiers) int_of_string_opt )
             with
             | Some v_bytes, Some v_crc, Some v_fp, Some v_tiers ->
               Some (name, Report_ok { v_bytes; v_crc; v_fp; v_tiers })
             | _ -> None)
           | "corrupt" :: name :: cls :: msg_words -> (
             match kv "class=" cls with
             | Some r_class ->
               let msg = String.concat " " msg_words in
               let r_msg =
                 match kv "msg=" msg with Some m -> m | None -> msg
               in
               Some (name, Report_corrupt { r_class; r_msg })
             | None -> None)
           | _ -> None)
         (String.split_on_char '\n' text))

let remove_report dir =
  try Sys.remove (report_path dir) with Sys_error _ -> ()
