(** One QUERY/ANSWER evaluation, from parsed request to response line.

    This is the single implementation behind both read paths: the
    in-process evaluator the server uses with the worker pool disabled,
    and the {!Pool} workers' request loop.  Keeping them one function
    means the response grammar, the budget clamping and the
    last-line-of-defense exception containment cannot drift apart.

    {!run_guarded} is the defense-in-depth boundary: [Stack_overflow]
    and [Out_of_memory] escaping the evaluator are caught and rendered
    as a structured [error worker-crash ...] line instead of tearing
    down the connection loop (in-process) or masking the real fault
    behind a raw worker death (in a pool worker). *)

type caps = {
  deadline : float option;
      (** server-side default per-request deadline, relative seconds *)
  max_answer_nodes : int;
  max_work : int;
  max_heap_words : int;
      (** GC heap ceiling for the evaluating process; [max_int] when
          evaluation shares the server's heap (the cap is only
          meaningful inside an isolated worker) *)
}

val budget_for : caps -> Protocol.opts -> Xmldoc.Budget.t
(** Combine the server's caps with the request's own options: a request
    may tighten the deadline and the node cap, never widen them. *)

type kind =
  | Query
  | Answer

type outcome = {
  response : string;  (** the single response line *)
  degraded : bool;
      (** the budget stopped (or the expansion truncated): the response
          carries a partial answer — counted in server stats *)
}

val select_tier :
  Catalog.entry ->
  Protocol.opts ->
  level:int ->
  Sketch.Synopsis.t * (int * int * int) option
(** Which ladder rung serves this request: the coarser of the
    request's own [-tier] and the server's degradation [level], clamped
    to the entry's rung count.  Returns the synopsis plus the
    [(tier, rungs, budget_bytes)] tag to stamp on the response — [None]
    for plain single-tier entries, whose responses must stay
    byte-identical to pre-ladder servers. *)

val run :
  ?tier:int * int * int ->
  ?levels:(Sketch.Synopsis.t * Xmldoc.Label.t list list) array * float ->
  budget:Xmldoc.Budget.t ->
  kind ->
  Sketch.Synopsis.t ->
  Twig.Syntax.t ->
  outcome
(** Evaluate and render; [tier] (from {!select_tier}) appends
    [tier=<k>/<n> budget=<bytes>] after the [degraded] field.

    [levels] is the live-update delta stack with its staleness bound
    (see {!Ingest}), ascending generation, each level paired with its
    tombstone paths: every level is first masked by the union of the
    strictly newer levels' tombstones ({!Sketch.Build.prune_paths}) —
    deletions subtract from the answer as soon as their batch flushes —
    then the base and every masked level are evaluated independently
    under the ONE request budget, selectivity estimates add, result
    forests concatenate under the shared document root, and the
    response is tagged [levels=<k> staleness=<s>].  The base is never
    masked: deletion addresses live-ingested data only.  The
    combination is exact for paths below the root because level extents
    are disjoint sub-forests of one document; a query on the root label
    itself over-counts (each level carries its own root placeholder).
    An absent or empty stack takes the single-synopsis path unchanged —
    responses stay byte-identical.

    May raise whatever the evaluator raises — callers outside a
    sacrificial worker want {!run_guarded}. *)

val guard : (unit -> outcome) -> outcome
(** The containment combinator behind {!run_guarded}: [Stack_overflow]
    and [Out_of_memory] escaping [f] become an [error worker-crash ...]
    response ({!Xmldoc.Fault.Worker_crash}).  Other exceptions still
    escape — the server's total dispatcher maps them to
    [error internal].  Exposed so tests can drive the containment with
    a synthetic crash. *)

val run_guarded :
  ?tier:int * int * int ->
  ?levels:(Sketch.Synopsis.t * Xmldoc.Label.t list list) array * float ->
  budget:Xmldoc.Budget.t ->
  kind ->
  Sketch.Synopsis.t ->
  Twig.Syntax.t ->
  outcome
(** [guard] applied to {!run}. *)
