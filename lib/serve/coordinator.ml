(* Hedged scatter-gather over a replica group.

   The coordinator is a thin server: it speaks the same line protocol
   on its own socket, but owns no catalog — every QUERY/ANSWER is
   forwarded to a {!Replica} group.  Tail latency is cut by hedging
   (if the primary has not answered within [hedge_after], the same
   request is raced against the next-healthiest member; the first
   well-formed response wins and the losers are cancelled by closing
   their connections), and fault tolerance falls out of the same
   machinery (a dead primary is just a very slow one).  Three guard
   rails keep the fan-out from becoming the outage:

   - the {!Replica.Budget} token bucket caps hedges + retries as a
     fraction of primary traffic, so a sick GROUP degrades to ~1x
     amplification instead of a connect storm;
   - deadline propagation: the forwarded line carries the caller's
     [-deadline] minus the time already burned queueing and
     connecting, never more;
   - single-target verbs (BUILD, RELOAD, CANCEL, JOBS, QUIT) are
     refused outright — a group must never pick the target of a
     side effect implicitly. *)

type config = {
  hedge_after : float;
  request_timeout : float;
  connect_timeout : float;
  max_attempts : int;
  retry_ratio : float;
  retry_burst : float;
  probe_interval : float;
  probe_timeout : float;
  replica : Replica.config;
  max_inflight : int;
  drain_deadline : float;
}

let default_config =
  {
    hedge_after = 0.05;
    request_timeout = 5.0;
    connect_timeout = 1.0;
    max_attempts = 3;
    retry_ratio = 0.2;
    retry_burst = 10.0;
    probe_interval = 0.5;
    probe_timeout = 1.0;
    replica = Replica.default_config;
    max_inflight = 64;
    drain_deadline = 5.0;
  }

type stats = {
  mutable requests : int;
  mutable forwarded : int;
  mutable hedges : int;
  mutable hedges_won : int;
  mutable hedges_suppressed : int;
      (* hedge opportunities skipped because the whole group reported
         browned-out HEALTH — racing a saturated group is a retry storm *)
  mutable retries : int;
  mutable refused : int;
  mutable failures : int;
}

type t = {
  config : config;
  group : Replica.t;
  budget : Replica.Budget.t;
  log : string -> unit;
  stats : stats;
  stats_lock : Mutex.t;
  mutable draining : bool;
}

let create ?(log = prerr_endline) ?(config = default_config) paths =
  if config.max_attempts < 1 then
    invalid_arg "Coordinator.create: max_attempts must be >= 1";
  if config.hedge_after <= 0.0 then
    invalid_arg "Coordinator.create: hedge_after must be > 0";
  {
    config;
    group = Replica.create ~config:config.replica paths;
    budget =
      Replica.Budget.create ~ratio:config.retry_ratio ~burst:config.retry_burst;
    log;
    stats =
      {
        requests = 0;
        forwarded = 0;
        hedges = 0;
        hedges_won = 0;
        hedges_suppressed = 0;
        retries = 0;
        refused = 0;
        failures = 0;
      };
    stats_lock = Mutex.create ();
    draining = false;
  }

let stats t = t.stats

let group t = t.group

let budget t = t.budget

let draining t = t.draining

let bump f t = Mutex.protect t.stats_lock (fun () -> f t.stats)

let log_event t fmt = Printf.ksprintf t.log fmt

let request_drain t =
  if not t.draining then begin
    t.draining <- true;
    log_event t "event=drain-requested"
  end

let install_drain_signals t =
  let handle = Sys.Signal_handle (fun _ -> request_drain t) in
  (try Sys.set_signal Sys.sigterm handle
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint handle
  with Invalid_argument _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Transport plumbing (deadline-bounded, fault-injectable)             *)
(* ------------------------------------------------------------------ *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect_to t path =
  match Xmldoc.Io_fault.tap Xmldoc.Io_fault.Connect ~path with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match
      Unix.set_nonblock fd;
      Unix.connect fd (Unix.ADDR_UNIX path)
    with
    | () ->
      Unix.clear_nonblock fd;
      Ok fd
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) -> (
      match Unix.select [] [ fd ] [] t.config.connect_timeout with
      | [], [], [] ->
        close_quietly fd;
        Error "connect timed out"
      | _ -> (
        match Unix.getsockopt_error fd with
        | None ->
          Unix.clear_nonblock fd;
          Ok fd
        | Some e ->
          close_quietly fd;
          Error (Unix.error_message e))
      | exception Unix.Unix_error (e, _, _) ->
        close_quietly fd;
        Error (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      close_quietly fd;
      Error (Unix.error_message e))

let send_all fd data ~deadline =
  let len = Bytes.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      let budget = deadline -. Unix.gettimeofday () in
      if budget <= 0.0 then Error "send deadline"
      else
        match Unix.select [] [ fd ] [] budget with
        | _, [], _ -> Error "send deadline"
        | _ -> (
          match Unix.write fd data off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error (EINTR, _, _) -> go off
          | exception Unix.Unix_error (e, _, _) ->
            Error ("write: " ^ Unix.error_message e))
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error (e, _, _) ->
          Error ("select: " ^ Unix.error_message e)
  in
  go 0

let recv_line fd ~deadline =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Ok line
    | None -> (
      let budget = deadline -. Unix.gettimeofday () in
      if budget <= 0.0 then Error "receive deadline"
      else
        match Unix.select [ fd ] [] [] budget with
        | [], _, _ -> Error "receive deadline"
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed"
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) ->
            Error ("read: " ^ Unix.error_message e))
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
          Error ("select: " ^ Unix.error_message e))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The scatter                                                         *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* a response any server in this repository can legally utter *)
let well_formed_response line =
  line = "pong" || line = "bye"
  || starts_with "ok " line
  || starts_with "error " line

(* Server errors worth racing a DIFFERENT replica for: a crashed
   worker or a shedding server says nothing about the query, only
   about that member.  Definitive answers (ok, not-found, poisoned,
   bad-request, deadline...) win immediately — a second opinion would
   return the same verdict, or worse, a different one. *)
let retryable_response line =
  match String.split_on_char ' ' line with
  | "error" :: cls :: _ -> cls = "worker-crash" || cls = "overloaded"
  | _ -> false

type flight = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  r : Replica.replica;
  hedge : bool;  (* charged against the retry budget *)
}

let scatter t ~hedged ~line =
  let t0 = Unix.gettimeofday () in
  Replica.Budget.note_request t.budget;
  bump (fun s -> s.forwarded <- s.forwarded + 1) t;
  let overall =
    t0
    +.
    match Protocol.request_deadline line with
    | Some d when d > 0.0 -> Float.min d t.config.request_timeout
    | _ -> t.config.request_timeout
  in
  let order = ref (Replica.rank t.group) in
  let attempts_left = ref (max 1 t.config.max_attempts) in
  let flights = ref [] in
  let fallback = ref None in
  let last_err = ref "no replica reachable" in
  (* One launch = one replica accepting the (deadline-rewritten) line;
     members that refuse the connect are burned through within the
     same launch.  [charge = true] (hedges, retries) costs one budget
     token for the whole launch. *)
  let launch ~charge =
    if !order = [] || !attempts_left <= 0 then false
    else if charge && not (Replica.Budget.try_take t.budget) then false
    else begin
      let rec go () =
        match !order with
        | [] -> false
        | r :: rest ->
          order := rest;
          decr attempts_left;
          let elapsed = Unix.gettimeofday () -. t0 in
          let line' = Protocol.with_remaining_deadline line ~elapsed in
          (match connect_to t (Replica.path r) with
          | Error msg ->
            last_err := Replica.path r ^ ": " ^ msg;
            Replica.note_failure t.group r;
            if !attempts_left > 0 then go () else false
          | Ok fd -> (
            match
              send_all fd
                (Bytes.of_string (line' ^ "\n"))
                ~deadline:(Unix.gettimeofday () +. t.config.connect_timeout)
            with
            | Error msg ->
              close_quietly fd;
              last_err := Replica.path r ^ ": " ^ msg;
              Replica.note_failure t.group r;
              if !attempts_left > 0 then go () else false
            | Ok () ->
              flights := { fd; buf = Buffer.create 256; r; hedge = charge } :: !flights;
              true))
      in
      go ()
    end
  in
  let close_flight f =
    close_quietly f.fd;
    flights := List.filter (fun g -> g.fd != f.fd) !flights
  in
  let close_all () = List.iter (fun f -> close_quietly f.fd) !flights in
  let give_up now =
    log_event t "event=scatter-give-up elapsed=%.3fs fallback=%s last=%s"
      (now -. t0)
      (if !fallback = None then "no" else "yes")
      !last_err;
    bump (fun s -> s.failures <- s.failures + 1) t;
    match !fallback with
    | Some resp -> resp
    | None ->
      if now >= overall then
        Protocol.error_line ~cls:"deadline"
          (Printf.sprintf "no replica answered within %.3gs" (overall -. t0))
      else Protocol.error_line ~cls:"io" ("all replicas failed: " ^ !last_err)
  in
  ignore (launch ~charge:false : bool);
  let hedge_at = ref (if hedged then t0 +. t.config.hedge_after else infinity) in
  let winner = ref None in
  let read_flight f =
    let chunk = Bytes.create 4096 in
    match Unix.read f.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      last_err := Replica.path f.r ^ ": read: " ^ Unix.error_message e;
      Replica.note_failure t.group f.r;
      close_flight f
    | 0 ->
      last_err := Replica.path f.r ^ ": connection closed";
      Replica.note_failure t.group f.r;
      close_flight f
    | n -> (
      Buffer.add_subbytes f.buf chunk 0 n;
      let s = Buffer.contents f.buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
        let line =
          let l = String.sub s 0 i in
          if l <> "" && l.[String.length l - 1] = '\r' then
            String.sub l 0 (String.length l - 1)
          else l
        in
        if not (well_formed_response line) then begin
          last_err := Replica.path f.r ^ ": malformed response";
          Replica.note_failure t.group f.r;
          close_flight f
        end
        else if
          retryable_response line
          && (List.length !flights > 1 || (!order <> [] && !attempts_left > 0))
        then begin
          (* that member is sick; keep its verdict as a fallback and
             let someone else answer *)
          fallback := Some line;
          last_err := Replica.path f.r ^ ": " ^ line;
          Replica.note_failure t.group f.r;
          close_flight f
        end
        else begin
          Replica.note_success t.group f.r;
          if f.hedge then bump (fun s -> s.hedges_won <- s.hedges_won + 1) t;
          winner := Some line
        end)
  in
  let rec loop () =
    match !winner with
    | Some line ->
      close_all ();
      line
    | None ->
      let now = Unix.gettimeofday () in
      if !flights = [] then begin
        if now < overall && !order <> [] && !attempts_left > 0 then begin
          if launch ~charge:true then begin
            bump (fun s -> s.retries <- s.retries + 1) t;
            loop ()
          end
          else give_up now (* budget dry or nobody reachable *)
        end
        else give_up now
      end
      else if now >= overall then begin
        (* members still holding a flight burned the caller's whole
           deadline without a word: that is outlier evidence, and it is
           the only strike a frozen (vs dead) replica ever earns from
           live traffic — connects to it keep landing in its backlog. *)
        List.iter (fun f -> Replica.note_failure t.group f.r) !flights;
        close_all ();
        give_up now
      end
      else begin
        (* hedge: one extra flight at a time, budget permitting *)
        if
          now >= !hedge_at
          && List.length !flights < 2
          && !order <> []
          && !attempts_left > 0
        then begin
          if Replica.all_browned_out t.group then
            (* the whole group reports browned-out HEALTH: a hedge can
               only add load where every member already has too much —
               the primary's (coarser, faster) answer is the rescue *)
            bump (fun s -> s.hedges_suppressed <- s.hedges_suppressed + 1) t
          else if launch ~charge:true then
            bump (fun s -> s.hedges <- s.hedges + 1) t;
          (* admitted, denied or suppressed, re-arm: tokens may accrue
             from concurrent traffic, and a cooled group hedges again *)
          hedge_at := Unix.gettimeofday () +. t.config.hedge_after
        end;
        let wake = Float.min overall !hedge_at in
        let timeout = Float.max 0.0 (Float.min (wake -. now) 0.25) in
        (match Unix.select (List.map (fun f -> f.fd) !flights) [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | readable, _, _ ->
          List.iter
            (fun fd ->
              if !winner = None then
                match List.find_opt (fun f -> f.fd == fd) !flights with
                | Some f -> read_flight f
                | None -> ())
            readable);
        loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let yes_no b = if b then "yes" else "no"

let health_line t =
  let n = Replica.size t.group in
  let ready = Replica.ready_count t.group in
  let ejected = Replica.ejected_count t.group in
  let reason =
    if t.draining then Some "draining"
    else if ready = 0 then Some "no-ready-replica"
    else None
  in
  let s = t.stats in
  Printf.sprintf
    "ok health live=yes ready=%s draining=%s coordinator=yes replicas=%d/%d \
     ejected=%d browned_out=%s requests=%d forwarded=%d hedges=%d \
     hedges_won=%d hedges_suppressed=%d retries=%d budget_spent=%d \
     budget_denied=%d budget_tokens=%.2f stale=%d%s"
    (yes_no (reason = None))
    (yes_no t.draining) ready n ejected
    (yes_no (Replica.all_browned_out t.group))
    s.requests s.forwarded s.hedges s.hedges_won s.hedges_suppressed s.retries
    (Replica.Budget.spent t.budget)
    (Replica.Budget.denied t.budget)
    (Replica.Budget.tokens t.budget)
    (Replica.stale_count t.group)
    (match reason with None -> "" | Some r -> " reason=" ^ r)

let verb_of line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> String.uppercase_ascii line
  | Some i -> String.uppercase_ascii (String.sub line 0 i)

let handle_request t ~line (req : Protocol.request) =
  match req with
  | Ping -> ("pong", false)
  | Quit -> ("bye", true)
  | Health -> (health_line t, false)
  (* every read is idempotent across an identical group, so every read
     gets the tail-latency hedge — an unhedged read against a frozen
     primary would burn the whole request timeout with no rescue *)
  | Query _ | Answer _ | List | Stat _ -> (scatter t ~hedged:true ~line, false)
  | Ingest _ | Delete _ | Update _ ->
    (* Mutations are single-target too, but the refusal can at least
       point at a member that would ADMIT the write: write-aware
       ranking sorts shedding/readonly members last, so the suggestion
       is the group's most writable replica right now. *)
    bump (fun s -> s.refused <- s.refused + 1) t;
    let suggestion =
      match Replica.rank ~writes:true t.group with
      | r :: _ when Replica.write_penalty r = 0 ->
        Printf.sprintf " (try --target %s)" (Replica.path r)
      | _ -> ""
    in
    ( Protocol.error_line ~cls:"bad-request"
        (Printf.sprintf
           "%s is single-target: a replica group cannot pick its target — \
            address one replica directly (treesketch client --target)%s"
           (verb_of line) suggestion),
      false )
  | Reload _ | Build _ | Jobs | Cancel _ | Scrub | Fetch _ | Repair ->
    bump (fun s -> s.refused <- s.refused + 1) t;
    ( Protocol.error_line ~cls:"bad-request"
        (Printf.sprintf
           "%s is single-target: a replica group cannot pick its target — \
            address one replica directly (treesketch client --target)"
           (verb_of line)),
      false )

let handle_line t line =
  bump (fun s -> s.requests <- s.requests + 1) t;
  match Protocol.parse line with
  | Error reason -> (Protocol.error_line ~cls:"bad-request" reason, false)
  | Ok req -> (
    match handle_request t ~line req with
    | response -> response
    | exception e ->
      bump (fun s -> s.failures <- s.failures + 1) t;
      (Protocol.error_line ~cls:"internal" (Printexc.to_string e), false))

(* ------------------------------------------------------------------ *)
(* Background health probing                                           *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* The [load=<n>] token of a HEALTH line — a brownout server's
   degradation level.  Absent (pre-brownout servers, coordinators) or
   malformed reads as 0: cool. *)
let probed_load line =
  List.fold_left
    (fun acc word ->
      if String.length word > 5 && String.sub word 0 5 = "load=" then
        match int_of_string_opt (String.sub word 5 (String.length word - 5)) with
        | Some n when n >= 0 -> n
        | _ -> acc
      else acc)
    0
    (String.split_on_char ' ' line)

(* The [staleness=<s>] token of a HEALTH line — the member's ingestion
   staleness bound (age of its oldest acknowledged-but-unflushed WAL
   record).  Absent (no live ingestion, or a fully flushed member) or
   malformed reads as 0: fresh. *)
let probed_staleness line =
  List.fold_left
    (fun acc word ->
      if String.length word > 10 && String.sub word 0 10 = "staleness=" then
        match float_of_string_opt (String.sub word 10 (String.length word - 10)) with
        | Some s when s >= 0.0 && Float.is_finite s -> s
        | _ -> acc
      else acc)
    0.0
    (String.split_on_char ' ' line)

(* The [write_state=<s>] token of a HEALTH line — the member's
   write-pressure admission state.  Absent (pre-write-pressure servers,
   or no ingestion state and no watermark) or malformed reads as "ok":
   the member would admit a mutation. *)
let probed_write_state line =
  List.fold_left
    (fun acc word ->
      if String.length word > 12 && String.sub word 0 12 = "write_state=" then
        match String.sub word 12 (String.length word - 12) with
        | ("ok" | "paced" | "shedding" | "readonly") as s -> s
        | _ -> acc
      else acc)
    "ok"
    (String.split_on_char ' ' line)

(* The [catalog_hash=<hex>] token of a HEALTH line — the member's
   catalog content identity.  [None] on pre-anti-entropy servers, so
   divergence detection degrades to off against an old fleet. *)
let probed_hash line =
  List.fold_left
    (fun acc word ->
      if String.length word > 13 && String.sub word 0 13 = "catalog_hash=" then
        Some (String.sub word 13 (String.length word - 13))
      else acc)
    None
    (String.split_on_char ' ' line)

let probe_replica t r =
  let path = Replica.path r in
  match connect_to t path with
  | Error _ -> Replica.note_probe t.group r `Failed
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_quietly fd)
      (fun () ->
        let deadline = Unix.gettimeofday () +. t.config.probe_timeout in
        match send_all fd (Bytes.of_string "HEALTH\n") ~deadline with
        | Error _ -> Replica.note_probe t.group r `Failed
        | Ok () -> (
          match recv_line fd ~deadline with
          | Ok line when contains line " ready=yes" ->
            Replica.note_probe ~load:(probed_load line)
              ~staleness:(probed_staleness line)
              ~write_state:(probed_write_state line)
              ?catalog_hash:(probed_hash line) t.group r `Ready
          | Ok line when starts_with "ok health" line ->
            Replica.note_probe ~load:(probed_load line)
              ~staleness:(probed_staleness line)
              ~write_state:(probed_write_state line)
              ?catalog_hash:(probed_hash line) t.group r `Not_ready
          | Ok _ | Error _ -> Replica.note_probe t.group r `Failed))

let probe_loop t =
  while not t.draining do
    List.iter
      (fun r -> if not t.draining then probe_replica t r)
      (Replica.members t.group);
    (* one sweep's worth of fresh hashes: recompute who diverged *)
    Replica.mark_divergent t.group;
    let until = Unix.gettimeofday () +. t.config.probe_interval in
    while (not t.draining) && Unix.gettimeofday () < until do
      Thread.delay 0.05
    done
  done

(* ------------------------------------------------------------------ *)
(* Front end                                                           *)
(* ------------------------------------------------------------------ *)

let serve_channels t ic oc =
  let rec loop () =
    if t.draining then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | exception Sys_error _ -> ()
      | line ->
        let response, quit = handle_line t line in
        (match
           output_string oc response;
           output_char oc '\n';
           flush oc
         with
        | () -> if not quit then loop ()
        | exception Sys_error _ -> ())
  in
  loop ()

let serve_socket ?(backlog = 64) t ~path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  (match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock backlog;
  let admission = Server.Admission.create t.config.max_inflight in
  let conn_lock = Mutex.create () in
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let register fd = Mutex.protect conn_lock (fun () -> Hashtbl.replace conns fd ()) in
  let unregister fd = Mutex.protect conn_lock (fun () -> Hashtbl.remove conns fd) in
  let live_conns () =
    Mutex.protect conn_lock (fun () ->
        Hashtbl.fold (fun fd () acc -> fd :: acc) conns [])
  in
  let prober = Thread.create probe_loop t in
  let connection fd =
    Fun.protect
      ~finally:(fun () ->
        Server.Admission.release admission;
        unregister fd;
        close_quietly fd)
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> ()
          | exception Sys_error _ -> ()
          | exception Unix.Unix_error _ -> ()
          | line ->
            let response, quit = handle_line t line in
            (match
               output_string oc response;
               output_char oc '\n';
               flush oc
             with
            | () -> if not quit && not t.draining then loop ()
            | exception Sys_error _ -> ()
            | exception Unix.Unix_error _ -> ())
        in
        loop ())
  in
  log_event t "event=listening socket=%s replicas=%d hedge_after=%.3fs" path
    (Replica.size t.group) t.config.hedge_after;
  let rec accept_loop () =
    if t.draining then ()
    else
      match
        Xmldoc.Io_fault.tap Xmldoc.Io_fault.Accept ~path;
        Unix.select [ sock ] [] [] 0.2
      with
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error (e, _, _) ->
        log_event t "event=accept-error errno=%s" (Unix.error_message e);
        Thread.delay 0.05;
        accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ ->
        (match Unix.accept sock with
        | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ()
        | exception Unix.Unix_error (e, _, _) ->
          log_event t "event=accept-error errno=%s" (Unix.error_message e);
          Thread.delay 0.05
        | fd, _ ->
          if Server.Admission.try_acquire admission then begin
            register fd;
            ignore (Thread.create connection fd : Thread.t)
          end
          else begin
            let oc = Unix.out_channel_of_descr fd in
            (try
               output_string oc
                 (Protocol.error_line ~cls:"overloaded"
                    (Printf.sprintf "%d connections already in flight"
                       t.config.max_inflight)
                 ^ "\n");
               flush oc
             with Sys_error _ -> ());
            close_quietly fd
          end);
        accept_loop ()
  in
  accept_loop ();
  (* graceful drain: stop accepting, let in-flight scatters finish,
     sever stragglers, stop the prober, flush final counters *)
  close_quietly sock;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  log_event t "event=draining inflight=%d deadline=%.1fs"
    (Server.Admission.in_flight admission)
    t.config.drain_deadline;
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (live_conns ());
  let give_up = Unix.gettimeofday () +. t.config.drain_deadline in
  while
    Server.Admission.in_flight admission > 0 && Unix.gettimeofday () < give_up
  do
    Thread.delay 0.02
  done;
  let stragglers = live_conns () in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  if stragglers <> [] then Thread.delay 0.1;
  Thread.join prober;
  let s = t.stats in
  log_event t
    "event=drained requests=%d forwarded=%d hedges=%d hedges_won=%d retries=%d \
     refused=%d failures=%d budget_spent=%d budget_denied=%d members=%s"
    s.requests s.forwarded s.hedges s.hedges_won s.retries s.refused s.failures
    (Replica.Budget.spent t.budget)
    (Replica.Budget.denied t.budget)
    (String.concat "," (Replica.describe t.group))
