(** The live update path of the INGEST verb: a WAL-backed memtable plus
    an LSM stack of delta TreeSketches, every stage of which survives a
    kill.

    Per synopsis [name], next to the base snapshot [name.ts]:

    - [.name.wal] — the write-ahead log ({!Wal}); acknowledged ingests
    - [.name.levels] — the level manifest, the single commit point
    - [.name.l<gen>.delta] — one delta TreeSketch snapshot per level
    - [.name.lock] — [lockf] file guarding manifest read-modify-writes

    Durability ordering: ingest = WAL append + fsync, then ack; flush =
    write delta file, atomically swap the manifest (which advances
    [flushed], the highest WAL sequence covered by levels), then trim
    the WAL; compaction = write merged delta, swap manifest, delete the
    consumed inputs.  Replay skips WAL records at or below [flushed],
    so the trailing cleanup steps are pure garbage collection — a crash
    before them loses nothing and duplicates nothing. *)

(** {2 File layout} *)

val manifest_path : dir:string -> name:string -> string
(** [dir/.<name>.levels]. *)

val manifest_name : string -> string option
(** [Some name] iff the base name is a level manifest. *)

val level_file : name:string -> gen:int -> string
(** [.<name>.l<gen>.delta]. *)

val level_name : string -> (string * int) option
(** [Some (name, gen)] iff the base name is a level delta file — how
    the scrubber's orphan sweep recognizes unreferenced levels. *)

(** {2 Path predicates}

    A DELETE/UPDATE targets subtrees by a slash-joined label path
    rooted at the engine's shared root: [a/b] matches every [b] child
    of an [a]-rooted fragment.  Segments use the job-name alphabet
    ([A-Za-z0-9_-]) — no spaces or commas, so a path travels unquoted
    in WAL payloads and comma-joined manifest fields. *)

val valid_path : string -> bool

val parse_path : string -> Xmldoc.Label.t list option
(** [Some labels] iff {!valid_path}; the interned segment labels. *)

val discover : dir:string -> string list
(** Names with live ingestion state (a WAL or a manifest) in [dir],
    sorted — how the server finds engines to reopen on restart. *)

(** {2 Manifest} *)

type level_info = {
  gen : int;  (** monotone generation; embedded in the file name *)
  file : string;  (** base name of the delta snapshot *)
  bytes : int;
  crc : int32;  (** CRC-32 of the delta file's raw bytes *)
  records : int;  (** ingested records summarized by this level *)
  since : float;  (** arrival time of the level's oldest record *)
  tombs : string list;
      (** tombstone path predicates from this level's deletes/updates:
          they mask matching subtrees in all strictly older levels
          until compaction reclaims them physically.  Rendered as a
          comma-joined [tombs=] field, omitted when empty — manifests
          without tombstones stay byte-identical to the previous
          format, and older parsers ignore the unknown field. *)
}

type manifest = {
  flushed : int;  (** highest WAL seq covered by the levels; 0 = none *)
  entries : level_info list;  (** ascending [gen] *)
}

val empty_manifest : manifest

val read_manifest :
  ?limits:Xmldoc.Limits.t ->
  dir:string ->
  name:string ->
  unit ->
  (manifest, Xmldoc.Fault.t) result
(** Load and verify (CRC trailer, line grammar, unique ascending
    generations).  A missing manifest reads as {!empty_manifest}. *)

val parse_manifest : path:string -> string -> (manifest, Xmldoc.Fault.t) result
(** In-memory variant (for the scrubber, which already holds the raw
    bytes); [path] only tags faults. *)

val render_manifest : manifest -> string

val load_level :
  ?limits:Xmldoc.Limits.t ->
  dir:string ->
  level_info ->
  (Sketch.Synopsis.t, Xmldoc.Fault.t) result
(** Load one delta snapshot, verifying its bytes against the
    manifest's [crc] before parsing. *)

(** {2 Engine} *)

type t
(** One synopsis's live ingestion state: open WAL, memtable of
    acknowledged-but-unflushed records, loaded level stack. *)

val open_ :
  ?limits:Xmldoc.Limits.t ->
  ?root_label:Xmldoc.Label.t ->
  dir:string ->
  name:string ->
  level_budget:int ->
  flush_records:int ->
  unit ->
  (t, Xmldoc.Fault.t) result
(** Open (creating state files lazily) and recover: manifest read,
    levels loaded, WAL replayed with its torn tail truncated, records
    at or below the manifest's [flushed] dropped (exactly-once), the
    rest restored to the memtable.  [root_label] seeds the delta root
    when no level exists yet (existing levels win; defaults to
    [name]). *)

val close : t -> unit

val name : t -> string
val root_label : t -> Xmldoc.Label.t

val replayed_torn : t -> bool
(** Whether {!open_} truncated a torn WAL tail. *)

val ingest :
  ?now:float -> t -> xml:string -> (int * int, [ `No_space | `Fault of Xmldoc.Fault.t ]) result
(** Validate the fragment (parser limits apply), durably append it to
    the WAL, and admit it to the memtable.  Returns [(seq, depth)] —
    the record's sequence number and the post-append memtable depth.
    [`No_space] means the log could not grow: nothing was retained and
    the caller answers [error ingest-deferred].  A failed append never
    consumes the sequence number — the retry reuses it, so replay's
    strictly-increasing check never meets a legitimate gap. *)

val delete :
  ?now:float ->
  t ->
  path:string ->
  (int * int, [ `No_space | `Fault of Xmldoc.Fault.t ]) result
(** Durably append a deletion tombstone for every subtree matching the
    path predicate ({!valid_path}).  Same ack contract and return as
    {!ingest}.  Visibility follows flushes, like inserts: once the
    delete's batch is flushed, queries no longer see the deleted
    subtrees' contribution from any older level (the tombstone masks
    them) and compaction reclaims them physically.  The base snapshot
    is not mutated — deletion addresses live-ingested data. *)

val update :
  ?now:float ->
  t ->
  path:string ->
  xml:string ->
  (int * int, [ `No_space | `Fault of Xmldoc.Fault.t ]) result
(** Delete-then-insert committed atomically at one sequence number:
    one WAL record carries both the path predicate and the validated
    replacement fragment. *)

val flush : ?now:float -> t -> (bool, Xmldoc.Fault.t) result
(** Summarize the memtable into one delta TreeSketch (compressed under
    the level budget when needed), publish it as a new level via the
    locked manifest swap, and trim the WAL.  [Ok false] when there is
    nothing to flush or a compaction is in flight (flushes pause while
    compacting; the memtable simply grows and staleness rises). *)

val should_flush : t -> bool
(** Memtable at or past [flush_records] and no compaction in flight. *)

val refresh : t -> (unit, Xmldoc.Fault.t) result
(** Re-read the manifest and reload the level stack — the parent's
    reap path after a compaction child swapped the manifest. *)

val set_compacting : t -> bool -> unit
val compacting : t -> bool

val depth : t -> int
(** Memtable depth: acknowledged records not yet covered by a level. *)

val staleness : ?now:float -> t -> float
(** Age of the oldest acknowledged-but-unflushed record; [0.] when the
    memtable is empty.  The bound on how stale an answer over the
    level stack can be, exposed through STAT/HEALTH. *)

val wal_bytes : t -> int
(** Bytes of intact WAL on disk — the write-pressure controller's
    "WAL outstanding" signal. *)

val flushed_seq : t -> int
val level_count : t -> int
val level_records : t -> int
val level_synopses : t -> Sketch.Synopsis.t array

val level_stack : t -> (Sketch.Synopsis.t * Xmldoc.Label.t list list) array
(** The loaded levels, ascending generation, each paired with its
    parsed tombstone paths — the stack {!Query_exec.run} subtracts
    deletions over. *)

val tomb_paths : level_info -> Xmldoc.Label.t list list
(** The entry's valid tombstone predicates, parsed. *)

(** {2 Compaction (Jobs child body)} *)

val compact :
  ?limits:Xmldoc.Limits.t ->
  ?params:Sketch.Build.params ->
  dir:string ->
  name:string ->
  level_budget:int ->
  checkpoint:string ->
  unit ->
  (bool, Xmldoc.Fault.t) result
(** Merge every listed level ({!Sketch.Build.merge_tombstoned}: each
    level's tombstones prune the strictly older union before its
    content joins, so the output owes no tombstones — deleted subtrees
    are physically reclaimed) and compress the union under the level
    budget, journaling through Build checkpoints at [checkpoint] so a
    killed job resumes mid-clustering.  The swap re-validates, under
    the file lock, that the listed levels are exactly the consumed
    ones — a consumed-elsewhere input or a mid-compaction flush (whose
    tombstones the merge could not have folded) makes the result stale,
    discarded as a no-op.  Returns whether the compression degraded
    (maps to the degraded exit code in the Jobs child). *)
