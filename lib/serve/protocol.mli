(** The line-oriented request protocol of [treesketch serve].

    One request per line, one response line per request — trivially
    scriptable over stdin/stdout, a pipe, or the Unix socket.

    {2 Requests}
    {v
    PING
    HEALTH
    LIST
    RELOAD [-force]
    STAT <name>
    QUERY  [-deadline=<seconds>] [-max-nodes=<n>] [-tier=<k>] <name> <twig-query>
    ANSWER [-deadline=<seconds>] [-max-nodes=<n>] [-tier=<k>] <name> <twig-query>
    BUILD <name> <xml-path> <budget>
    INGEST <name> <xml-fragment>
    DELETE <name> <path-pred>
    UPDATE <name> <path-pred> <xml-fragment>
    JOBS
    CANCEL <name>
    SCRUB
    FETCH <name>
    REPAIR
    QUIT
    v}
    Verbs are case-insensitive.  [<name>] is a catalog entry
    ([name.ts]).  [-deadline] is relative seconds from request receipt
    (negative = already expired, useful for testing degradation);
    [-max-nodes] caps answer/tree nodes.  Both are clamped by the
    server's own configured caps.

    [BUILD] starts a background synopsis build (a supervised worker
    process; see {!Jobs}): [<name>] must be filename-safe
    ([A-Za-z0-9_-]+), [<budget>] accepts byte suffixes ([10KB]).  The
    finished snapshot appears in the catalog as [<name>.ts] via
    hot-reload; serving is never blocked by a build.

    [INGEST] appends one single-line XML fragment to the named
    synopsis's live update path (see {!Ingest}): the fragment is
    validated, durably logged (WAL append + fsync) and acknowledged
    with its sequence number; a background flush summarizes batches
    into delta TreeSketch levels that queries combine with the base
    snapshot.  Everything after the name is the fragment.  INGEST is
    {e not} idempotent — a retried ingest is a second ingest — so the
    retrying client never replays it.  When the log cannot grow
    (ENOSPC) the server answers [error ingest-deferred ...]: nothing
    was retained, retry later.

    [DELETE] durably tombstones every {e live-ingested} subtree
    matching a slash-joined label path predicate ([a/b] = every [b]
    child of an [a]-rooted fragment; segments use the job-name
    alphabet).  [UPDATE] is delete-then-insert committed atomically at
    one WAL sequence.  Both share INGEST's durability contract (WAL
    append + fsync before the ack) and its non-idempotence: a retried
    mutation is a second mutation, {e except} after
    [error ingest-deferred], where nothing was retained and the resend
    is safe.  The base snapshot is never mutated — deletion addresses
    data that arrived through INGEST.

    Every mutation passes write-pressure admission control: under
    load the ack carries an advisory [backpressure=<ms>] pacing hint;
    past the shed threshold (or under the soft disk watermark) the
    server answers [error ingest-deferred retry-after=<ms>]; under the
    hard disk watermark all mutations are refused while reads, scrub
    and repair keep working.

    [-tier=<k>] asks for degradation rung [k] or coarser (0 = finest):
    against a ladder snapshot the server answers from tier
    [max k (server level)], clamped to the coarsest rung present;
    against a plain snapshot it is a no-op.  A brownout server inserts
    or raises this option itself when forwarding to pool workers (see
    {!with_tier}).

    The anti-entropy verbs (see {!Scrub} and {!Repair}): [SCRUB] runs
    a synchronous integrity pass over the catalog directory — every
    snapshot re-read and re-verified, rot quarantined as
    [scrub-<class>], orphaned temp files swept.  [FETCH <name>]
    streams the named snapshot's raw file bytes in length-prefixed
    CRC'd chunks — the {e only} multi-line response in the protocol,
    used by peer repair, never relayed by the coordinator.  [REPAIR]
    asks the server to pull repairs for its quarantined or divergent
    snapshots from its configured peers now.

    [HEALTH] separates liveness from readiness: any response at all
    means the process is live; [ready=yes] additionally means the
    catalog directory scans cleanly, the server is not draining, the
    connection pool has headroom and the job supervisor responds — the
    signal a rolling restart waits for before shifting traffic (see
    {!Server.request_drain}).

    {2 Responses}
    {v
    pong
    bye
    ok health live=yes ready=<yes|no> draining=<yes|no> catalog=<d> quarantined=<d> inflight=<d>/<d> jobs=<d> [wal=<d> staleness=<g>] [reason=<s>]
    ok catalog n=<d> names=<a,b,...> quarantined=<d>
    ok reload loaded=<d> reloaded=<d> quarantined=<d> removed=<d> swept=<d> sweep_age=<g>
    ok stat name=<s> classes=<d> edges=<d> bytes=<d> stable=<yes|no> quarantined=<no|yes reason=<class>> [levels=<d> level_records=<d> flushed=<d> wal=<d> staleness=<g>]
    ok stat name=<s> resident=no quarantined=yes reason=<class>
    ok query degraded=<no|deadline|nodes|work> [tier=<k>/<n> budget=<bytes>] [levels=<k> staleness=<g>] est=<g> classes=<d> empty=<yes|no>
    ok answer degraded=<no|deadline|nodes|work> [tier=<k>/<n> budget=<bytes>] [levels=<k> staleness=<g>] empty=yes
    ok answer degraded=<no|deadline|nodes|work> [tier=<k>/<n> budget=<bytes>] [levels=<k> staleness=<g>] truncated=<yes|no> nodes=<d> tree=<xml>
    ok build name=<s> state=running
    ok ingest name=<s> seq=<d> wal=<d> [backpressure=<ms>]
    ok delete name=<s> seq=<d> wal=<d> [backpressure=<ms>]
    ok update name=<s> seq=<d> wal=<d> [backpressure=<ms>]
    ok jobs n=<d> [<name>=<state>...]
    ok cancel name=<s> state=<s>
    ok scrub checked=<d> corrupt=<d> swept=<d>
    ok fetch name=<s> bytes=<d> chunks=<d> crc=<8-hex>   (then chunk lines; see {!Repair})
    ok repair attempted=<d> repaired=<d> deferred=<d> failed=<d>
    error <class> <message>
    v}
    Job states are [running], [backoff] (crashed, restarting from its
    checkpoint), [done], [done-degraded], [failed] and [cancelled].
    [degraded] names why the request budget stopped ([no] = it did
    not): a degraded response still carries the partial answer and its
    selectivity estimate — graceful degradation, never an abort.
    Error classes are {!Xmldoc.Fault.class_name} tags ([parse],
    [corrupt], [limit], [deadline], [io], [worker-crash]) plus the
    protocol-level [bad-request], [not-found], [overloaded], [busy],
    [internal] and [poisoned].  [worker-crash] means an isolated query
    worker died (or contained a crash) evaluating this request — the
    request is lost, the server is not; [poisoned] means the
    (synopsis, query) pair has crashed workers so often it is
    quarantined and answered without evaluation (see {!Pool}).
    [tier=<k>/<n> budget=<bytes>] appears on every answer served from a
    ladder snapshot with more than one rung: the 0-based tier the
    answer came from, the rung count, and that tier's byte budget —
    the declared accuracy of a browned-out answer.  Plain snapshots
    never carry it, so single-resolution responses are byte-identical
    to earlier versions.  [levels=<k> staleness=<g>] appears on every
    answer for a name carrying live-ingested delta levels: the answer
    merges the base snapshot with [k] deltas, and [staleness] bounds
    the age in seconds of acknowledged-but-unflushed records the answer
    may still be missing.  Names without levels respond byte-identically
    to earlier versions. *)

type opts = {
  deadline : float option;  (** relative seconds *)
  max_nodes : int option;
  tier : int option;  (** minimum degradation rung, 0 = finest *)
}

val no_opts : opts

type request =
  | Ping
  | Health
  | List
  | Reload of { force : bool }
  | Stat of string
  | Query of opts * string * Twig.Syntax.t
  | Answer of opts * string * Twig.Syntax.t
  | Build of { name : string; xml : string; budget : int }
  | Ingest of { name : string; xml : string }
      (** one single-line XML fragment for the live update path *)
  | Delete of { name : string; path : string }
      (** durably tombstone every live-ingested subtree matching the
          slash-joined path predicate (see {!Ingest.valid_path}) *)
  | Update of { name : string; path : string; xml : string }
      (** delete-then-insert committed atomically at one WAL sequence *)
  | Jobs
  | Cancel of string
  | Scrub  (** synchronous catalog integrity pass *)
  | Fetch of string  (** stream a snapshot's raw bytes for peer repair *)
  | Repair  (** pull repairs from configured peers now *)
  | Quit

val parse : string -> (request, string) result
(** Total: every malformed request line is [Error reason] (rendered by
    the server as [error bad-request <reason>]). *)

val request_deadline : string -> float option
(** The [-deadline] value carried in a request line's option zone
    (between the verb and the first operand) — [None] when absent or
    malformed.  Relays use it to size their own wait. *)

val with_remaining_deadline : string -> elapsed:float -> string
(** [with_remaining_deadline line ~elapsed] rewrites the line's
    [-deadline=D] option to [max 0 (D - elapsed)]: the budget a relay
    may grant downstream after burning [elapsed] seconds itself — never
    more than the caller has left, and clamped at zero when the relay
    already spent it all (a caller-supplied negative deadline passes
    through untouched, but a relay never {e manufactures} one).  The
    option is always preserved, never dropped.  Lines without a
    deadline option (and [elapsed <= 0]) pass through unchanged; only
    tokens in the leading option zone are touched, so operand text is
    never mangled. *)

val with_tier : string -> level:int -> string
(** [with_tier line ~level] raises the [-tier] option of a
    QUERY/ANSWER line to at least [level], inserting it when absent —
    how a browned-out server propagates its degradation level to pool
    workers, which re-parse the raw line against their own catalog
    copy.  A request already asking for a coarser tier is kept; every
    other line (and [level <= 0]) passes through unchanged.  Same
    option-zone-only discipline as {!with_remaining_deadline}. *)

val single_target : string -> bool
(** Is this request's verb bound to ONE server (BUILD, INGEST, DELETE,
    UPDATE, RELOAD, CANCEL, JOBS, QUIT, SCRUB, FETCH, REPAIR)?  A replica-group relay must
    refuse to pick a target implicitly: the coordinator answers
    [error bad-request], and the replica-mode client requires an
    explicit [--target].  Case-insensitive. *)

val query_target : string -> string option
(** The synopsis name a QUERY/ANSWER request line targets, skipping
    options — [None] for every other verb or a malformed line.  This is
    what lets the client keep a per-synopsis circuit breaker without
    fully parsing (or even being able to parse) the query. *)

val one_line : string -> string
(** Newlines flattened to spaces — applied to anything woven into a
    response line. *)

val error_line : cls:string -> string -> string

val fault_line : Xmldoc.Fault.t -> string
(** [error <class> <message>] for a structured fault. *)

val degraded_token : Xmldoc.Budget.stop option -> string
(** [no], [deadline], [nodes], [work] or [heap]. *)
