(** The resident synopsis catalog of the serving runtime.

    A catalog maps names to loaded synopses, backed by a directory of
    [.ts] snapshot files ([name.ts] serves as [name]).  {!refresh}
    reconciles the resident set with the directory:

    - new or changed files (by [(mtime, size, inode)] fingerprint) are
      re-loaded through the validating {!Sketch.Serialize.load_res};
      the inode component means a same-second, same-size rewrite
      published by {!Sketch.Serialize.save_atomic}'s rename is still
      observed — only an in-place overwrite of the same inode needs
      [refresh ~force:true];
    - files that fail to load are {e quarantined}, never partially
      loaded: the structured fault is recorded, and — crucially — a
      previously resident version of the same name {e keeps serving}
      (approximate answers from a slightly stale synopsis beat no
      answers); a quarantined file is retried once its fingerprint
      moves — so an in-place repair is picked up without a restart,
      while a persistently corrupt file is not re-parsed on every
      refresh ([refresh ~force:true] retries unconditionally);
    - files that disappeared are dropped;
    - level manifests ([.name.levels], see {!Ingest}) are reconciled
      the same way in a second pass: a manifest whose own fingerprint
      moved (every flush/compaction swap renames a new inode over it)
      has its delta stack re-loaded and attached to the entry; a
      corrupt manifest quarantines the name while the previously
      loaded stack keeps serving; a manifest without a base snapshot
      synthesizes an ingest-only entry over a root-only placeholder.

    Combined with {!Sketch.Serialize.save_atomic}'s
    write-temp-then-rename discipline, a crash at any byte of a
    snapshot write leaves the catalog serving the previous complete
    version; a torn in-place write is caught by the version-2 checksum
    and quarantined.

    Every operation is thread-safe (one internal lock): connection
    threads read concurrently with auto-reload refreshes, without the
    server-wide serialization the pre-pool runtime relied on. *)

(** One rung of a degradation ladder: a synopsis built under
    [t_budget] bytes. *)
type tier = {
  t_budget : int;
  t_synopsis : Sketch.Synopsis.t;
}

type entry = {
  name : string;
  path : string;
  synopsis : Sketch.Synopsis.t;  (** the finest tier, [tiers.(0)] *)
  tiers : tier array;
      (** finest first, never empty: a version-4 ladder snapshot loads
          all its rungs; a plain snapshot has exactly one tier whose
          budget is its own size *)
  content_crc : string;
      (** 8-hex CRC-32 of the raw file bytes at load time — the
          content identity replicas compare for divergence, restored
          exactly by a byte-identical peer repair *)
  params_fp : string;
      (** {!Scrub.fingerprint} of the build shape (plain vs ladder,
          tier budgets), 8-hex *)
  mtime : float;  (** fingerprint at load time *)
  size : int;  (** fingerprint at load time *)
  ino : int;  (** fingerprint at load time *)
  levels : (Sketch.Synopsis.t * Xmldoc.Label.t list list) array;
      (** the live-update delta stack ([.name.levels] manifest + its
          [.name.l<gen>.delta] files), ascending generation, each level
          paired with its tombstone path predicates ([tombs=] in the
          manifest, parsed); [[||]] when the name has no ingestion
          state.  Queries evaluate base plus every level and combine,
          with each level masked by every {e newer} level's tombstones
          first (see {!Query_exec}).  Levels are deliberately {e not}
          part of {!hashes}/{!combined_hash}: they are per-member
          ingestion state, and hashing them would make every replica
          look permanently divergent. *)
  level_records : int;  (** ingested records summarized across levels *)
  flushed_seq : int;  (** highest WAL sequence covered by the levels *)
  synthetic : bool;
      (** [true] for an ingest-only name: no base snapshot exists, and
          [synopsis] is a root-only placeholder the levels extend *)
  l_mtime : float;  (** manifest fingerprint; zeros when absent *)
  l_size : int;
  l_ino : int;
}

val tier_for : entry -> int -> tier
(** [tier_for entry level] is the rung serving degradation level
    [level], clamped to the coarsest rung present — [tiers.(0)] for
    every plain snapshot regardless of level. *)

type quarantined = {
  q_name : string;
  q_path : string;
  fault : Xmldoc.Fault.t;
  q_scrub : bool;
      (** [true] when the background scrubber found the file rotten in
          place ({!quarantine_scrub}); [false] for load-time rejection *)
  q_mtime : float;  (** fingerprint of the rejected file *)
  q_size : int;  (** fingerprint of the rejected file *)
  q_ino : int;  (** fingerprint of the rejected file *)
}

val quarantine_reason : quarantined -> string
(** Protocol token for why the name is quarantined:
    {!Xmldoc.Fault.class_name} of the fault, prefixed with ["scrub-"]
    (e.g. ["scrub-corrupt"]) when the scrubber found it — operators can
    tell a bad publish from bit-rot discovered later. *)

type event =
  | Loaded of string
  | Reloaded of string
  | Quarantined of string * Xmldoc.Fault.t
  | Removed of string
  | Scan_error of Xmldoc.Fault.t
      (** the catalog directory itself could not be scanned *)

type t

val snapshot_extension : string
(** [".ts"] — the only files the catalog considers, which is what makes
    {!Sketch.Serialize.save_atomic}'s [.tmp] staging files invisible to
    readers. *)

val create : ?limits:Xmldoc.Limits.t -> string -> t
(** [create dir] is an empty catalog over [dir]; call {!refresh} to
    populate it.  [limits] bounds every snapshot load. *)

val refresh : ?force:bool -> t -> event list
(** Reconcile with the directory; returns what changed, in
    deterministic (name-sorted) order.  [force] reloads unchanged files
    too.  Never raises. *)

val find : t -> string -> entry option

val fault_for : t -> string -> Xmldoc.Fault.t option
(** The quarantine fault recorded for [name], if any — present exactly
    when the on-disk file is unloadable (the name may still be
    resident from an earlier good version). *)

val names : t -> string list
(** Resident names, sorted. *)

val quarantined : t -> quarantined list
(** Quarantine records, sorted by name. *)

val quarantine_for : t -> string -> quarantined option
(** The full quarantine record for [name] (see {!fault_for} for just
    the fault). *)

val quarantine_scrub : t -> string -> Xmldoc.Fault.t -> unit
(** Apply a scrub verdict: record [name] as quarantined with
    [q_scrub = true].  The resident in-memory version {e keeps
    serving} — it was loaded from bytes that verified clean; what
    rotted is the file.  The recorded fingerprint is the rotten file's
    current stat, so a repair installed by atomic rename (new inode)
    is picked up by the next {!refresh} without [force]. *)

val hashes : t -> (string * string * string) list
(** [(name, content_crc, params_fp)] per resident entry, name-sorted —
    what LIST advertises for per-synopsis divergence checks. *)

val combined_hash : t -> string
(** One 8-hex hash over {!hashes}: equal between two members iff they
    hold byte-identical snapshots with identical build parameters under
    identical names.  Advertised by HEALTH; the coordinator compares
    members' values to flag divergent replicas. *)

val size : t -> int

val dir : t -> string
