(** Peer snapshot repair — the pull side of anti-entropy.

    A member whose snapshot rotted in place (scrub quarantine) or
    diverged from the group (content-hash disagreement, see
    {!Catalog.hashes}) pulls a clean copy from a peer with the [FETCH]
    verb and installs it byte-identically through the atomic-rename
    writer, so content hashes converge exactly.

    The [FETCH] response is the protocol's only multi-line response:
    {v
    ok fetch name=<n> bytes=<N> chunks=<k> crc=<8-hex>
    chunk <i> <rawlen> <8-hex crc of raw> <hex data>     (k lines)
    end fetch
    v}
    Chunks are hex-armoured (the stream stays line-oriented) and
    individually checksummed.  The puller verifies chunk lengths and
    CRCs, the chunk count, the total length, the whole-file CRC, and
    finally a full parse-and-validate of the assembled bytes — a tear,
    a lying peer, or an injected I/O fault at {e any} point aborts the
    repair with the local store untouched; a partial file can never be
    installed.

    Disk exhaustion degrades instead of wedging: before installing,
    the repair preflights the catalog directory by preallocating a
    staging file of the snapshot's size; [ENOSPC] turns the attempt
    into [Deferred] (the clean copy is still on the peers — nothing is
    lost by waiting for space). *)

val chunk_bytes : int
(** Raw bytes per chunk line (32 KiB; hex armour doubles it on the
    wire). *)

val render_fetch : path:string -> name:string -> string -> string
(** The serving side: frame a snapshot's raw bytes as the complete
    multi-line FETCH response (no trailing newline — the server's
    response writer adds it).  [path] labels the per-chunk
    {!Xmldoc.Io_fault.Write} taps, so tests can tear the stream
    mid-chunk deterministically.

    [path] is re-stat'ed before each chunk: a snapshot deleted or
    replaced (new inode) mid-stream aborts the frame and returns one
    [error fetch-gone] line instead — the bytes in hand no longer
    match what the catalog advertises, and a puller installing them
    would immediately diverge again. *)

val fetch :
  ?limits:Xmldoc.Limits.t ->
  timeout:float ->
  string ->
  string ->
  (string, string) result
(** [fetch ~timeout peer name] pulls [name]'s raw snapshot bytes from
    the server at socket path [peer], verifying everything (see
    above).  [Ok bytes] is safe to install verbatim. *)

val preflight :
  ?free:(unit -> int option) ->
  ?min_free:int ->
  string ->
  bytes:int ->
  (unit, [ `No_space | `Io of string ]) result
(** Can the catalog directory hold [bytes] more?  Probed empirically —
    preallocate-and-remove a staging file of that size — so the answer
    reflects the real filesystem (and fault-injection) the install
    will face.  [free]/[min_free] teach it the server's hard disk
    watermark ({!Write_pressure.min_free}): an install that would push
    [free ()] below [min_free] is [`No_space] even when it would
    physically fit — repair must not consume the headroom the
    watermark protects.  A [free] probe returning [None] (or an absent
    [free]/zero [min_free]) skips the watermark check. *)

val install : dir:string -> name:string -> string -> (unit, Xmldoc.Fault.t) result
(** Atomically publish verified bytes as [dir/name.ts]
    ({!Sketch.Serialize.write_atomic}). *)

val peer_hashes :
  timeout:float -> string -> ((string * (string * string)) list, string) result
(** One peer's census: [LIST] it and parse the
    [hashes=name:crc:fp,...] token into [(name, (crc, fp))]. *)

type outcome =
  | Repaired of { name : string; peer : string; crc : string }
  | Deferred of { name : string; reason : string }
      (** disk-full preflight — retry when space frees up *)
  | Failed of { name : string; reason : string }

val outcome_name : outcome -> string

val plan :
  local_hashes:(string * string * string) list ->
  quarantined:string list ->
  peer_census:(string * (string * (string * string)) list) list ->
  (string * string list) list
(** What to pull: every quarantined name any peer still lists (our
    copy is known-bad; fetch-side verification is the guard), plus
    every name at least two peers agree on and the local catalog lacks
    or contradicts (one peer's word cannot overrule a locally-clean
    copy).  Deletions are never propagated.  Returns
    [(name, candidate peers)], majority-identity peers first,
    name-sorted. *)

val repair_one :
  ?limits:Xmldoc.Limits.t ->
  ?free:(unit -> int option) ->
  ?min_free:int ->
  timeout:float ->
  dir:string ->
  string ->
  string list ->
  outcome
(** Pull one name from the first candidate that yields fully-verified
    bytes, preflight (watermark-aware when [free]/[min_free] are
    given), install. *)

val sync :
  ?limits:Xmldoc.Limits.t ->
  ?free:(unit -> int option) ->
  ?min_free:int ->
  timeout:float ->
  dir:string ->
  peers:string list ->
  local_hashes:(string * string * string) list ->
  quarantined:string list ->
  unit ->
  outcome list
(** One full anti-entropy pull: census every peer, {!plan}, repair
    each target.  Unreachable peers drop out of the census; an empty
    census yields an empty plan — repair is opportunistic, never an
    error. *)
