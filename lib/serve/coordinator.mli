(** Hedged scatter-gather serving over a {!Replica} group.

    [treesketch coordinate] runs one of these: a front-end server
    speaking the same line protocol as [treesketch serve], forwarding
    every read to a group of identical replicas.  The coordinator owns
    no catalog — its job is {e routing}:

    - {e Hedging}: QUERY/ANSWER go to the healthiest replica first; if
      no response lands within [hedge_after], the same request races a
      second, next-healthiest member.  The first well-formed response
      wins; the losers are cancelled by closing their connections
      (servers observe the severed socket and stop caring).  Hedging
      converts one slow replica from a p99 disaster into a
      [hedge_after]-sized blip.
    - {e Retry budget}: hedges and retries draw from a per-group
      {!Replica.Budget} token bucket refilled at [retry_ratio] per
      primary request.  A healthy group never notices it; a group-wide
      brownout runs the bucket dry and amplification is bounded instead
      of snowballing into a connect storm.
    - {e Health-gated routing}: a background prober HEALTHs every
      member each [probe_interval]; probe results and live-traffic
      outcomes feed {!Replica} outlier ejection, so a dead or draining
      member stops being anyone's primary within a probe period.
    - {e Deadline propagation}: the forwarded line's [-deadline] is
      rewritten to what the caller has {e left} (minus coordinator
      queueing/connect time) — a replica is never granted more budget
      than exists ({!Protocol.with_remaining_deadline}).
    - {e Single-target refusal}: BUILD, RELOAD, CANCEL and JOBS are
      answered [error bad-request ...] — a group must never pick the
      target of a side effect implicitly.  Operators address one
      replica directly ([treesketch client --target]).

    Every read (QUERY, ANSWER, LIST, STAT) is hedged: reads are
    idempotent across an identical group, and an unhedged read whose
    primary freezes would burn the whole request timeout with no
    rescue.  PING, HEALTH and QUIT are answered locally;
    the coordinator's HEALTH line aggregates group state and the
    hedge/budget counters the chaos harness asserts on. *)

type config = {
  hedge_after : float;
      (** seconds without a response before a hedge launches *)
  request_timeout : float;
      (** overall per-request ceiling, seconds (a request's own
          [-deadline] may only tighten it) *)
  connect_timeout : float;  (** per-replica connect + send budget *)
  max_attempts : int;
      (** replicas tried per request (primary + hedges + retries) *)
  retry_ratio : float;
      (** budget tokens deposited per primary request — long-run
          hedges+retries <= ratio x traffic *)
  retry_burst : float;  (** budget bucket cap (and starting level) *)
  probe_interval : float;  (** seconds between background HEALTH sweeps *)
  probe_timeout : float;  (** per-probe round-trip budget *)
  replica : Replica.config;  (** ejection knobs *)
  max_inflight : int;  (** connections before shedding, as in Server *)
  drain_deadline : float;
      (** seconds a drain waits for in-flight scatters *)
}

val default_config : config
(** 50 ms hedge, 5 s request, 1 s connect, 3 attempts, 0.2 retry ratio,
    burst 10, 500 ms probe sweeps, 64 connections, 5 s drain. *)

type stats = {
  mutable requests : int;  (** request lines handled *)
  mutable forwarded : int;  (** lines scattered to the group *)
  mutable hedges : int;  (** hedge flights launched (budget-admitted) *)
  mutable hedges_won : int;  (** requests a hedge answered first *)
  mutable hedges_suppressed : int;
      (** hedge opportunities skipped because every member's last
          probed HEALTH reported [load>0] — racing a second copy
          against a uniformly browned-out group only adds load *)
  mutable retries : int;  (** relaunches after every flight died *)
  mutable refused : int;  (** single-target verbs refused *)
  mutable failures : int;  (** requests answered with a local error *)
}

type t

val create : ?log:(string -> unit) -> ?config:config -> string list -> t
(** [create paths] coordinates the replica group at socket [paths].
    Raises [Invalid_argument] on an empty list or nonsensical config.
    [log] receives structured one-line records; default stderr. *)

val stats : t -> stats

val group : t -> Replica.t

val budget : t -> Replica.Budget.t

val handle_line : t -> string -> string * bool
(** One supervised request: the response line and whether the client
    asked to QUIT.  Total — never raises.  QUERY/ANSWER block until the
    scatter resolves (a response, the deadline, or group exhaustion). *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Stdio front end: serve line-by-line until EOF, QUIT or drain. *)

val serve_socket : ?backlog:int -> t -> path:string -> unit
(** Accept loop on a Unix domain socket at [path], one thread per
    connection, [max_inflight] admission control, background prober
    running throughout.  Returns only after a drain: the listener is
    unlinked, in-flight scatters finish (bounded by [drain_deadline]),
    stragglers are severed, the prober joins, and a final
    [event=drained] record with the hedge/budget counters is logged.
    The caller then exits 0. *)

val draining : t -> bool

val request_drain : t -> unit
(** Flip into draining mode; async-signal-safe and idempotent. *)

val install_drain_signals : t -> unit
(** Route SIGTERM/SIGINT to {!request_drain}. *)
