(** Supervised background TSBUILD jobs for the serving runtime.

    Each submitted job runs in a {e forked worker process}: the child
    parses the source document, runs the checkpointed build
    ({!Sketch.Build.build_checkpointed_res}, journaling into a hidden
    [.{name}.ckpt] file beside the catalog), atomically publishes the
    final snapshot as [{name}.ts] in the catalog directory — where
    hot-reload picks it up — and exits with a structured code.

    The parent never blocks on a build.  {!poll} (called from the
    request loop) reaps finished children with [WNOHANG] and maps
    their fate to a job state:

    - exit 0 / 10 → [Done] (10 = degraded: a limit tripped and the
      best-so-far synopsis was published);
    - exit 1–5 (the {!Xmldoc.Fault.exit_code} taxonomy) → [Failed]
      permanently — deterministic faults do not retry;
    - any other exit, or death by signal (crash, OOM kill, CANCEL from
      outside) → restarted from its last checkpoint under capped
      exponential backoff, up to [max_restarts] attempts, then
      [Failed].

    A restarted worker resumes from the journal only when its metadata
    proves it belongs to the same build (source fingerprint + budget);
    otherwise — corrupt, torn, or stale journal — it silently rebuilds
    from scratch: the checkpoint is an accelerator, never a
    dependency.

    [Unix.fork] itself failing (EAGAIN/ENOMEM — process table or
    memory exhausted) never crashes the supervisor: a {!submit} whose
    fork fails is shed as [Overloaded] (the client backs off and
    retries), and a restart whose fork fails consumes one attempt and
    re-enters backoff.  The {!Xmldoc.Io_fault.Fork} site injects this
    deterministically in tests.

    All operations are thread-safe (one internal lock); the pool-era
    server polls from every connection thread. *)

type config = {
  limits : Xmldoc.Limits.t;  (** parse/build resource bounds for workers *)
  max_jobs : int;  (** concurrently running workers; beyond it SUBMIT is refused *)
  max_restarts : int;  (** crash restarts before a job is declared [Failed] *)
  backoff_base : float;  (** first restart delay, seconds; doubles per attempt *)
  backoff_cap : float;  (** restart delay ceiling, seconds *)
  checkpoint_every : int;  (** journal the build every this many merges *)
  max_heap_words : int;  (** worker GC heap ceiling ({!Xmldoc.Budget}) *)
}

val default_config : config
(** 4 jobs, 3 restarts, 0.25 s backoff doubling to a 5 s cap,
    checkpoint every 64 merges, no heap ceiling. *)

type state =
  | Running of { pid : int; attempt : int }
  | Backoff of { attempt : int; not_before : float; reason : string }
      (** crashed; will restart from its checkpoint at [not_before] *)
  | Done of { degraded : bool }
  | Failed of { reason : string }
  | Cancelled

(** What the forked worker does. *)
type kind =
  | Build  (** checkpointed TSBUILD publishing a snapshot *)
  | Scrub
      (** catalog integrity scrub: re-verify every snapshot, publish a
          {!Scrub.report_path} report the parent replays as quarantine
          decisions *)
  | Compact
      (** merge a synopsis's delta levels into one and swap the level
          manifest atomically ({!Ingest.compact}) *)

type job = private {
  kind : kind;
  name : string;
  xml : string;
      (** the synopsis name for [Compact]; unused (empty) for [Scrub] *)
  budget : int;
      (** the per-level byte budget for [Compact]; unused (0) for
          [Scrub] *)
  mutable state : state;
}

type t

val create : ?config:config -> ?log:(string -> unit) -> string -> t
(** [create dir] supervises builds publishing into catalog directory
    [dir].  [log] receives one structured line per lifecycle event
    (default [prerr_endline]). *)

val state_token : state -> string
(** Protocol rendering: ["running"], ["backoff"], ["done"],
    ["done-degraded"], ["failed"], ["cancelled"]. *)

val find : t -> string -> job option
val list : t -> job list
(** All known jobs, sorted by name. *)

val running_count : t -> int

val checkpoint_path : t -> string -> string
(** Where a job journals its build — hidden ([.{name}.ckpt]) so the
    catalog scan never sees it.  Exposed for tests (chaos harness
    corrupts it). *)

val poll : t -> unit
(** Reap exited workers ([WNOHANG], never blocks) and launch jobs whose
    backoff has elapsed.  Call from the request loop. *)

type submit_error =
  | Busy  (** a job with this name is still running or backing off *)
  | Overloaded  (** [max_jobs] workers already running *)

val submit :
  t -> name:string -> xml:string -> budget:int -> (job, submit_error) result
(** Fork a worker building [xml] to [budget] bytes as catalog entry
    [name].  Resubmitting a finished/failed/cancelled name starts a
    fresh build (any stale journal is discarded first). *)

val scrub_name : string
(** [".scrub"] — the reserved name of the maintenance scrub job.
    Dot-prefixed, which {!Protocol.valid_job_name} rejects, so no
    client SUBMIT/CANCEL can collide with or kill it; the server's
    JOBS listing likewise hides dot-prefixed jobs. *)

val submit_scrub : t -> (job, submit_error) result
(** Fork a scrub worker over the catalog directory under the reserved
    {!scrub_name}.  [Busy] while a previous scrub still runs or backs
    off.  Unlike {!submit} this ignores [max_jobs] — scrubbing is
    supervisor-internal maintenance, and a store saturated with builds
    must still detect rot. *)

val compact_name : string -> string
(** [compact_name name] is the reserved job name ([".compact-" ^ name])
    under which [name]'s compactions run.  Dot-prefixed like
    {!scrub_name} and hidden for the same reasons. *)

val submit_compact : t -> name:string -> level_budget:int -> (job, submit_error) result
(** Fork a compaction worker merging [name]'s delta levels into one
    level of at most [level_budget] bytes ({!Ingest.compact}).  [Busy]
    while a previous compaction of the same name still runs or backs
    off.  Like {!submit_scrub} this ignores [max_jobs]; unlike
    {!submit}, a stale checkpoint is {e kept} — compaction is designed
    to resume its compression journal across server generations when
    the level set has not changed. *)

val cancel : t -> string -> job option
(** Kill the job's worker (SIGKILL — workers are pure computation with
    only atomic writes, so nothing graceful is lost), discard its
    checkpoint, and mark it [Cancelled].  [None] if the name is
    unknown; a finished job is returned unchanged. *)

val drain : t -> int
(** Server shutdown: SIGKILL and reap every running worker (returns how
    many), cancel pending backoffs.  Unlike {!cancel} the checkpoint
    journals are {e kept} — a drain is a restart in progress, and a
    resubmitted build on the next server generation resumes from its
    journal instead of starting over. *)
