(* The live update path: WAL-backed memtable + LSM levels of delta
   TreeSketches.

   Per synopsis [name], three kinds of hidden files live next to the
   base snapshot ([name.ts]):

   - [.name.wal]        the write-ahead log ({!Wal}); acked ingests
   - [.name.levels]     the level manifest — THE commit point
   - [.name.l<gen>.delta]  one delta TreeSketch per flushed level

   The manifest is a CRC-trailed text file listing the live levels and
   [flushed <seq>], the highest WAL sequence whose records are covered
   by some level.  Every transition is ordered so a kill at any byte
   loses nothing acknowledged:

   {v
   ingest:   WAL append+fsync  ->  ack            (record durable)
   flush:    write .l<gen>.delta -> swap manifest -> trim WAL
   compact:  write merged delta -> swap manifest -> delete inputs
   v}

   Both swaps go through {!Sketch.Serialize.write_atomic} (temp +
   fsync + rename), and replay skips WAL records with [seq <=
   flushed], so the WAL-trim and input-delete steps are pure garbage
   collection — re-running them after a crash is harmless, and
   crashing before them merely leaves files that replay ignores (and
   the scrubber's orphan sweep eventually removes).

   Manifest read-modify-writes are serialized across PROCESSES with an
   [lockf] file lock ([.name.lock]): a still-running compaction child
   orphaned by a server crash and the restarted server's flusher may
   both swap the manifest, and without mutual exclusion the loser's
   update — including [flushed], i.e. acknowledged records — would be
   silently dropped.  Within a process the engine mutex serializes. *)

let manifest_suffix = ".levels"

let manifest_path ~dir ~name = Filename.concat dir ("." ^ name ^ manifest_suffix)

let manifest_name file =
  if
    String.length file > 1 + String.length manifest_suffix
    && file.[0] = '.'
    && Filename.check_suffix file manifest_suffix
  then
    Some (String.sub file 1 (String.length file - 1 - String.length manifest_suffix))
  else None

let level_file ~name ~gen = Printf.sprintf ".%s.l%d.delta" name gen

(* [Some (name, gen)] iff [file] is a level file name. *)
let level_name file =
  if String.length file > 7 && file.[0] = '.' && Filename.check_suffix file ".delta"
  then
    let stem = String.sub file 1 (String.length file - 7) in
    match String.rindex_opt stem '.' with
    | Some dot
      when dot + 2 < String.length stem && stem.[dot + 1] = 'l' ->
      let name = String.sub stem 0 dot in
      let gen = String.sub stem (dot + 2) (String.length stem - dot - 2) in
      if name = "" then None
      else (
        match int_of_string_opt gen with
        | Some g when g >= 0 && String.for_all (fun c -> c >= '0' && c <= '9') gen
          ->
          Some (name, g)
        | _ -> None)
    | _ -> None
  else None

let lock_path ~dir ~name = Filename.concat dir ("." ^ name ^ ".lock")

(* ------------------------------------------------------------------ *)
(* Path predicates                                                      *)
(* ------------------------------------------------------------------ *)

(* A DELETE/UPDATE targets subtrees by a slash-joined label path rooted
   at the engine's shared root: [a/b] matches every [b] child of an
   [a]-rooted fragment.  The segment alphabet is the job-name alphabet
   (no spaces, no commas, no slashes inside a segment), which is what
   lets a path ride in a WAL payload before an XML body and in a
   comma-joined manifest field without any quoting. *)
let valid_path_segment seg =
  seg <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       seg

let valid_path s =
  s <> ""
  && List.for_all valid_path_segment (String.split_on_char '/' s)

let parse_path s =
  if not (valid_path s) then None
  else Some (List.map Xmldoc.Label.of_string (String.split_on_char '/' s))

(* Cross-process critical section around every manifest
   read-modify-write.  [lockf] locks are per-(process, file): they
   exclude the orphan-compactor-vs-restarted-server race that
   in-process mutexes cannot see. *)
let with_manifest_lock ~dir ~name f =
  match
    Unix.openfile (lock_path ~dir ~name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o666
  with
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Xmldoc.Fault.Io_error
         {
           path = lock_path ~dir ~name;
           message = fn ^ ": " ^ Unix.error_message e;
         })
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.lockf fd Unix.F_LOCK 0 with
        | exception Unix.Unix_error (e, fn, _) ->
          Error
            (Xmldoc.Fault.Io_error
               {
                 path = lock_path ~dir ~name;
                 message = fn ^ ": " ^ Unix.error_message e;
               })
        | () ->
          Fun.protect
            ~finally:(fun () ->
              try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
            f)

(* ------------------------------------------------------------------ *)
(* Manifest format                                                      *)
(* ------------------------------------------------------------------ *)

type level_info = {
  gen : int;  (** monotone generation; embedded in the file name *)
  file : string;  (** base name of the delta snapshot *)
  bytes : int;
  crc : int32;  (** CRC-32 of the delta file's raw bytes *)
  records : int;  (** ingested records summarized by this level *)
  since : float;  (** arrival time of the level's oldest record *)
  tombs : string list;
      (** tombstone path predicates from this level's deletes/updates —
          they mask matching subtrees in all strictly older levels
          until compaction reclaims them physically *)
}

type manifest = {
  flushed : int;  (** highest WAL seq covered by the levels; 0 = none *)
  entries : level_info list;  (** ascending [gen] *)
}

let empty_manifest = { flushed = 0; entries = [] }

let corrupt path line content message =
  Xmldoc.Fault.with_path path
    (Xmldoc.Fault.Corrupt_synopsis { line; content; message })

let render_manifest m =
  let b = Buffer.create 256 in
  Buffer.add_string b "levelset 1\n";
  Printf.bprintf b "flushed %d\n" m.flushed;
  List.iter
    (fun e ->
      (* [tombs=] is appended only when present, so tombstone-free
         manifests render byte-identically to what earlier servers
         wrote — and earlier parsers, which ignore unknown key=value
         fields, read tombstoned manifests without choking *)
      let tombs =
        if e.tombs = [] then "" else " tombs=" ^ String.concat "," e.tombs
      in
      Printf.bprintf b
        "level %d file=%s bytes=%d crc=%s records=%d since=%.6f%s\n" e.gen
        e.file e.bytes
        (Sketch.Crc32.to_hex e.crc)
        e.records e.since tombs)
    m.entries;
  let body = Buffer.contents b in
  body ^ "crc " ^ Sketch.Crc32.to_hex (Sketch.Crc32.string body) ^ "\n"

let kv key token =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  if String.length token > plen && String.sub token 0 plen = prefix then
    Some (String.sub token plen (String.length token - plen))
  else None

let parse_manifest ~path text =
  let fail line content message = Error (corrupt path line content message) in
  let lines = String.split_on_char '\n' text in
  (* CRC trailer is mandatory: the last line seals everything above. *)
  let rec split_trailer acc = function
    | [ crc_line; "" ] -> Ok (List.rev acc, crc_line)
    | [ crc_line ] -> Ok (List.rev acc, crc_line)
    | line :: rest -> split_trailer (line :: acc) rest
    | [] -> fail 0 "" "empty manifest"
  in
  match split_trailer [] lines with
  | Error _ as e -> e
  | Ok (body_lines, crc_line) -> (
    let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
    match String.split_on_char ' ' crc_line with
    | [ "crc"; hex ] -> (
      match Sketch.Crc32.of_hex hex with
      | Some declared when Int32.equal declared (Sketch.Crc32.string body) -> (
        match body_lines with
        | header :: rest when header = "levelset 1" -> (
          let flushed = ref None in
          let entries = ref [] in
          let error = ref None in
          List.iteri
            (fun i line ->
              if !error = None then
                let lineno = i + 2 in
                match String.split_on_char ' ' line with
                | [ "flushed"; n ] -> (
                  match int_of_string_opt n with
                  | Some n when n >= 0 && !flushed = None -> flushed := Some n
                  | _ -> error := Some (corrupt path lineno line "bad flushed line"))
                | "level" :: gen :: fields -> (
                  let field key = List.find_map (kv key) fields in
                  let tombs =
                    (* absent = none; present = comma-joined valid paths
                       (the alphabet excludes commas, so no quoting) *)
                    match field "tombs" with
                    | None -> Some []
                    | Some s ->
                      let paths = String.split_on_char ',' s in
                      if paths <> [] && List.for_all valid_path paths then
                        Some paths
                      else None
                  in
                  match
                    ( int_of_string_opt gen,
                      field "file",
                      Option.bind (field "bytes") int_of_string_opt,
                      Option.bind (field "crc") Sketch.Crc32.of_hex,
                      Option.bind (field "records") int_of_string_opt,
                      Option.bind (field "since") float_of_string_opt,
                      tombs )
                  with
                  | ( Some gen,
                      Some file,
                      Some bytes,
                      Some crc,
                      Some records,
                      Some since,
                      Some tombs )
                    when gen >= 0 && bytes >= 0 && records >= 0
                         && Float.is_finite since
                         && file <> ""
                         && Filename.basename file = file ->
                    entries :=
                      { gen; file; bytes; crc; records; since; tombs }
                      :: !entries
                  | _ -> error := Some (corrupt path lineno line "bad level line"))
                | _ -> error := Some (corrupt path lineno line "unknown manifest line"))
            rest;
          match !error with
          | Some f -> Error f
          | None ->
            let entries =
              List.sort (fun a b -> compare a.gen b.gen) (List.rev !entries)
            in
            let rec dup = function
              | a :: (b :: _ as rest) -> a.gen = b.gen || dup rest
              | _ -> false
            in
            if dup entries then fail 0 "" "duplicate level generation"
            else Ok { flushed = Option.value ~default:0 !flushed; entries })
        | header :: _ -> fail 1 header "not a levelset manifest"
        | [] -> fail 0 "" "empty manifest")
      | Some _ -> fail (List.length body_lines + 1) crc_line "manifest checksum mismatch"
      | None -> fail (List.length body_lines + 1) crc_line "bad crc line")
    | _ -> fail (List.length body_lines + 1) crc_line "missing crc trailer")

let read_manifest ?limits ~dir ~name () =
  let path = manifest_path ~dir ~name in
  if not (Sys.file_exists path) then Ok empty_manifest
  else
    match Sketch.Serialize.load_raw_res ?limits path with
    | Error f -> Error f
    | Ok text -> parse_manifest ~path text

let load_level ?limits ~dir info =
  let path = Filename.concat dir info.file in
  match Sketch.Serialize.load_raw_res ?limits path with
  | Error f -> Error f
  | Ok raw ->
    if not (Int32.equal (Sketch.Crc32.string raw) info.crc) then
      Error (corrupt path 0 "" "level content does not match manifest crc")
    else (
      match Sketch.Serialize.of_string_res ?limits raw with
      | Error f -> Error (Xmldoc.Fault.with_path path f)
      | Ok s -> Ok s)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

type level = {
  info : level_info;
  synopsis : Sketch.Synopsis.t;
}

type t = {
  dir : string;
  name : string;
  limits : Xmldoc.Limits.t;
  level_budget : int;
  flush_records : int;
  root_label : Xmldoc.Label.t;
  wal : Wal.t;
  mutable pending : Wal.record list;  (* newest first; oldest = last *)
  mutable next_seq : int;
  mutable flushed : int;
  mutable levels : level list;  (* ascending gen *)
  mutable compacting : bool;
  replayed_torn : bool;
  mutex : Mutex.t;
}

let with_mutex t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let load_levels ?limits ~dir ~cache entries =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | info :: rest -> (
      match List.find_opt (fun l -> l.info.gen = info.gen) cache with
      | Some l -> go ({ l with info } :: acc) rest
      | None -> (
        match load_level ?limits ~dir info with
        | Error f -> Error f
        | Ok synopsis -> go ({ info; synopsis } :: acc) rest))
  in
  go [] entries

let open_ ?(limits = Xmldoc.Limits.default) ?root_label ~dir ~name ~level_budget
    ~flush_records () =
  match read_manifest ~limits ~dir ~name () with
  | Error f -> Error f
  | Ok manifest -> (
    match load_levels ~limits ~dir ~cache:[] manifest.entries with
    | Error f -> Error f
    | Ok levels -> (
      match Wal.open_ ~limits ~dir ~name () with
      | Error f -> Error f
      | Ok (wal, records, torn) ->
        (* exactly-once: records at or below [flushed] are already in a
           level — a crash between manifest swap and WAL trim must not
           replay them into the memtable again *)
        let live = List.filter (fun r -> r.Wal.seq > manifest.flushed) records in
        let top =
          List.fold_left (fun acc r -> max acc r.Wal.seq) manifest.flushed records
        in
        let root_label =
          match levels with
          | l :: _ ->
            (* levels win: deltas must keep sharing one root label *)
            Sketch.Synopsis.label l.synopsis l.synopsis.Sketch.Synopsis.root
          | [] -> (
            match root_label with
            | Some l -> l
            | None -> Xmldoc.Label.of_string name)
        in
        Ok
          {
            dir;
            name;
            limits;
            level_budget;
            flush_records;
            root_label;
            wal;
            pending = List.rev live;
            next_seq = top + 1;
            flushed = manifest.flushed;
            levels;
            compacting = false;
            replayed_torn = torn;
            mutex = Mutex.create ();
          }))

let close t = with_mutex t (fun () -> Wal.close t.wal)

let name t = t.name
let root_label t = t.root_label
let replayed_torn t = t.replayed_torn
let depth t = with_mutex t (fun () -> List.length t.pending)
let flushed_seq t = with_mutex t (fun () -> t.flushed)
let level_count t = with_mutex t (fun () -> List.length t.levels)
let compacting t = with_mutex t (fun () -> t.compacting)

let level_records t =
  with_mutex t (fun () ->
      List.fold_left (fun acc l -> acc + l.info.records) 0 t.levels)

(* Age of the oldest acknowledged-but-unflushed record: the bound on
   how stale a query answer over the level stack can be. *)
let staleness ?(now = Unix.gettimeofday ()) t =
  with_mutex t (fun () ->
      match t.pending with
      | [] -> 0.
      | records ->
        let oldest =
          List.fold_left (fun acc r -> Float.min acc r.Wal.ts) Float.infinity
            records
        in
        Float.max 0. (now -. oldest))

let tomb_paths info = List.filter_map parse_path info.tombs

let level_synopses t =
  with_mutex t (fun () ->
      Array.of_list (List.map (fun l -> l.synopsis) t.levels))

let level_stack t =
  with_mutex t (fun () ->
      Array.of_list
        (List.map (fun l -> (l.synopsis, tomb_paths l.info)) t.levels))

let wal_bytes t = with_mutex t (fun () -> Wal.bytes t.wal)

(* Durably append one validated mutation.  The sequence number is
   advanced only after the WAL accepted the frame: a rolled-back append
   (ENOSPC, fault) reuses the same seq on the retry, so replay never
   sees a gap it would mistake for a tear boundary. *)
let append_mutation ?(now = Unix.gettimeofday ()) t ~op ~payload =
  with_mutex t (fun () ->
      let record = { Wal.seq = t.next_seq; ts = now; op; payload } in
      match Wal.append t.wal record with
      | Error _ as e -> e
      | Ok () ->
        t.pending <- record :: t.pending;
        t.next_seq <- t.next_seq + 1;
        Ok (record.Wal.seq, List.length t.pending))

let bad_path path =
  `Fault
    (Xmldoc.Fault.Parse_error
       {
         line = 0;
         column = 0;
         message =
           Printf.sprintf
             "invalid path predicate %S (want slash-joined [A-Za-z0-9_-] \
              segments)"
             path;
       })

let ingest ?now t ~xml =
  (* validate before logging: a fragment the parser rejects must be
     refused at the door, not discovered poisonous during replay *)
  match Xmldoc.Parser.of_string_res ~limits:t.limits xml with
  | Error f -> Error (`Fault f)
  | Ok _ -> append_mutation ?now t ~op:Wal.Insert ~payload:xml

let delete ?now t ~path =
  if not (valid_path path) then Error (bad_path path)
  else append_mutation ?now t ~op:Wal.Delete ~payload:path

(* An update's payload carries both halves — [<path> <xml>] — in one
   record, so delete-then-insert commits atomically at one seq. *)
let update ?now t ~path ~xml =
  if not (valid_path path) then Error (bad_path path)
  else
    match Xmldoc.Parser.of_string_res ~limits:t.limits xml with
    | Error f -> Error (`Fault f)
    | Ok _ -> append_mutation ?now t ~op:Wal.Update ~payload:(path ^ " " ^ xml)

let split_update payload =
  match String.index_opt payload ' ' with
  | None -> None
  | Some i ->
    Some
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )

let should_flush t =
  with_mutex t (fun () ->
      (not t.compacting) && List.length t.pending >= t.flush_records)

let set_compacting t b = with_mutex t (fun () -> t.compacting <- b)

(* Drop the subtrees one tombstone path matches from an in-batch
   fragment tree: the path's head addresses the fragment root, each
   further segment one containment step.  [None] = the whole fragment
   is deleted. *)
let rec prune_tree path tree =
  match path with
  | [] -> Some tree
  | [ l ] ->
    if Xmldoc.Label.equal (Xmldoc.Tree.label tree) l then None else Some tree
  | l :: rest ->
    if Xmldoc.Label.equal (Xmldoc.Tree.label tree) l then
      Some
        (Xmldoc.Tree.make_arr (Xmldoc.Tree.label tree)
           (Array.of_list
              (List.filter_map (prune_tree rest)
                 (Array.to_list (Xmldoc.Tree.children tree)))))
    else Some tree

(* Summarize the memtable into one delta TreeSketch and publish it as a
   new level.  Ordering is the crash-safety argument: the delta file
   lands first, the manifest swap commits it (advancing [flushed]), and
   only then is the WAL trimmed — so a kill anywhere either changes
   nothing visible or leaves garbage that replay ignores. *)
let flush ?(now = Unix.gettimeofday ()) t =
  with_mutex t (fun () ->
      if t.pending = [] || t.compacting then Ok false
      else
        let batch = List.rev t.pending in
        (* Replay the batch in sequence order: inserts accumulate
           fragment trees; a delete prunes the fragments accumulated so
           far (its strictly-older in-batch data) and becomes a
           tombstone on the published level, masking every older level
           until compaction; an update is delete-then-insert at one
           seq.  Inserts after a delete are untouched by it, so the
           level's own content is already net of its own tombstones. *)
        let apply (trees, tombs) r =
          let prune path trees =
            match parse_path path with
            | None -> trees (* validated at the door; defensive *)
            | Some labels -> List.filter_map (prune_tree labels) trees
          in
          let tomb path tombs =
            if List.mem path tombs then tombs else path :: tombs
          in
          let insert xml trees =
            match Xmldoc.Parser.of_string_res ~limits:t.limits xml with
            | Ok tree -> tree :: trees
            | Error _ -> trees (* validated at ingest; defensive *)
          in
          match r.Wal.op with
          | Wal.Insert -> (insert r.Wal.payload trees, tombs)
          | Wal.Delete -> (prune r.Wal.payload trees, tomb r.Wal.payload tombs)
          | Wal.Update -> (
            match split_update r.Wal.payload with
            | None -> (trees, tombs)
            | Some (path, xml) ->
              (insert xml (prune path trees), tomb path tombs))
        in
        let rev_fragments, rev_tombs =
          List.fold_left apply ([], []) batch
        in
        let fragments = List.rev rev_fragments in
        let tombs = List.rev rev_tombs in
        let last_seq =
          List.fold_left (fun acc r -> max acc r.Wal.seq) t.flushed batch
        in
        let oldest_ts =
          List.fold_left (fun acc r -> Float.min acc r.Wal.ts) now batch
        in
        let publish synopsis =
          let text = Sketch.Serialize.to_snapshot_string synopsis in
          let swapped =
            with_manifest_lock ~dir:t.dir ~name:t.name (fun () ->
                match read_manifest ~limits:t.limits ~dir:t.dir ~name:t.name () with
                | Error f -> Error f
                | Ok m -> (
                  let gen =
                    1 + List.fold_left (fun acc e -> max acc e.gen) 0 m.entries
                  in
                  let file = level_file ~name:t.name ~gen in
                  match
                    Sketch.Serialize.write_atomic (Filename.concat t.dir file) text
                  with
                  | Error f -> Error f
                  | Ok () -> (
                    let entry =
                      {
                        gen;
                        file;
                        bytes = String.length text;
                        crc = Sketch.Crc32.string text;
                        records = List.length batch;
                        since = oldest_ts;
                        tombs;
                      }
                    in
                    let m' =
                      {
                        flushed = max m.flushed last_seq;
                        entries = m.entries @ [ entry ];
                      }
                    in
                    match
                      Sketch.Serialize.write_atomic
                        (manifest_path ~dir:t.dir ~name:t.name)
                        (render_manifest m')
                    with
                    | Error f -> Error f
                    | Ok () -> Ok (m', entry, synopsis))))
          in
          match swapped with
          | Error _ as e -> e
          | Ok (m', entry, synopsis) -> (
            let cache = { info = entry; synopsis } :: t.levels in
            match load_levels ~limits:t.limits ~dir:t.dir ~cache m'.entries with
            | Error f -> Error f
            | Ok levels ->
              t.levels <- levels;
              t.flushed <- m'.flushed;
              t.pending <- [];
              (* pure GC from here: trimmed-or-not, replay skips
                 records at or below the manifest's flushed seq *)
              (match Wal.rewrite t.wal [] with Ok () | Error _ -> ());
              Ok true)
        in
        match fragments with
        | [] ->
          (* nothing positive left to summarize — an all-deletes batch,
             or deletes that cancelled every in-batch insert.  The
             root-only level still carries the tombstones (they must
             mask older levels) and advances flushed so the WAL
             drains. *)
          publish (Sketch.Stable.build (Xmldoc.Tree.make t.root_label []))
        | fragments -> (
          let stable =
            Sketch.Stable.build (Xmldoc.Tree.make t.root_label fragments)
          in
          if Sketch.Synopsis.size_bytes stable <= t.level_budget then
            publish stable
          else
            match
              Sketch.Build.build_res ~limits:t.limits stable
                ~budget:t.level_budget
            with
            | Error f -> Error f
            | Ok outcome -> publish outcome.Sketch.Build.synopsis))

(* Re-read the manifest after someone else swapped it (the compaction
   child, via the parent's reap path). *)
let refresh t =
  with_mutex t (fun () ->
      match read_manifest ~limits:t.limits ~dir:t.dir ~name:t.name () with
      | Error f -> Error f
      | Ok m -> (
        match load_levels ~limits:t.limits ~dir:t.dir ~cache:t.levels m.entries with
        | Error f -> Error f
        | Ok levels ->
          t.levels <- levels;
          t.flushed <- max t.flushed m.flushed;
          Ok ()))

(* ------------------------------------------------------------------ *)
(* Compaction (runs in a Jobs child process)                            *)
(* ------------------------------------------------------------------ *)

(* Merge every level into one delta and swap it in.  The merge is
   tombstone-cancelling ({!Sketch.Build.merge_tombstoned}): each
   level's tombstones prune the strictly older union before its own
   content joins, so the compacted level carries no tombstones at all —
   deletion becomes physical reclamation.  The expensive compression
   journals through Build checkpoints, so a killed-and-restarted
   compaction job resumes mid-clustering instead of starting over (same
   discipline as the BUILD worker).  The swap re-reads the manifest
   under the file lock and verifies the listed levels are EXACTLY the
   consumed ones — a level that appeared mid-compaction (an orphaned
   compactor racing a restarted server's flusher) may carry tombstones
   addressing the very data being merged, and folding it in would need
   an age order the generation sequence no longer reflects, so the
   compaction's output is discarded as a stale no-op instead. *)
let compact ?(limits = Xmldoc.Limits.default) ?(params = Sketch.Build.default_params)
    ~dir ~name ~level_budget ~checkpoint () =
  match read_manifest ~limits ~dir ~name () with
  | Error f -> Error f
  | Ok m when List.length m.entries < 2 ->
    (try Sys.remove checkpoint with Sys_error _ -> ());
    Ok false
  | Ok m -> (
    match load_levels ~limits ~dir ~cache:[] m.entries with
    | Error f -> Error f
    | Ok levels -> (
      match
        Sketch.Build.merge_tombstoned
          (List.map (fun l -> (l.synopsis, tomb_paths l.info)) levels)
      with
      | Error message ->
        Error (Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message })
      | Ok merged -> (
        let consumed = List.map (fun l -> l.info.gen) levels in
        let records =
          List.fold_left (fun acc l -> acc + l.info.records) 0 levels
        in
        let since =
          List.fold_left
            (fun acc l -> Float.min acc l.info.since)
            Float.infinity levels
        in
        let compressed =
          if Sketch.Synopsis.size_bytes merged <= level_budget then
            Ok { Sketch.Build.synopsis = merged; degraded = false }
          else
            let fingerprint = Sketch.Build.Checkpoint.fingerprint merged in
            let resumable =
              Sys.file_exists checkpoint
              &&
              match Sketch.Build.Checkpoint.load_res ~limits checkpoint with
              | Ok ck ->
                ck.Sketch.Build.Checkpoint.meta.source = fingerprint
                && ck.meta.budget = level_budget
                && ck.meta.params_hash = Sketch.Build.Checkpoint.hash_params params
              | Error _ -> false
            in
            if resumable then Sketch.Build.resume_res ~params ~limits checkpoint
            else
              Sketch.Build.build_checkpointed_res ~params ~limits ~checkpoint
                merged ~budget:level_budget
        in
        match compressed with
        | Error f -> Error f
        | Ok outcome -> (
          let text =
            Sketch.Serialize.to_snapshot_string outcome.Sketch.Build.synopsis
          in
          let swapped =
            with_manifest_lock ~dir ~name (fun () ->
                match read_manifest ~limits ~dir ~name () with
                | Error f -> Error f
                | Ok m2 ->
                  (* exactly the consumed set: a missing input means
                     another actor already compacted; an EXTRA level
                     means a flush landed mid-compaction whose
                     tombstones we could not have folded — both make
                     this output stale *)
                  if
                    List.map (fun e -> e.gen) m2.entries <> consumed
                  then Ok None
                  else
                    let gen =
                      1 + List.fold_left (fun acc e -> max acc e.gen) 0 m2.entries
                    in
                    let file = level_file ~name ~gen in
                    (match
                       Sketch.Serialize.write_atomic (Filename.concat dir file)
                         text
                     with
                    | Error f -> Error f
                    | Ok () -> (
                      let entry =
                        {
                          gen;
                          file;
                          bytes = String.length text;
                          crc = Sketch.Crc32.string text;
                          records;
                          since;
                          (* tombstones cancelled into the merge: the
                             compacted level owes nothing to levels
                             below it (there are none left) *)
                          tombs = [];
                        }
                      in
                      let kept =
                        List.filter
                          (fun e -> not (List.mem e.gen consumed))
                          m2.entries
                      in
                      let entries =
                        List.sort
                          (fun a b -> compare a.gen b.gen)
                          (entry :: kept)
                      in
                      match
                        Sketch.Serialize.write_atomic (manifest_path ~dir ~name)
                          (render_manifest { m2 with entries })
                      with
                      | Error f -> Error f
                      | Ok () -> Ok (Some ()))))
          in
          match swapped with
          | Error f -> Error f
          | Ok None ->
            (try Sys.remove checkpoint with Sys_error _ -> ());
            Ok false
          | Ok (Some ()) ->
            (* pure GC: consumed inputs are no longer referenced *)
            List.iter
              (fun l ->
                try Sys.remove (Filename.concat dir l.info.file)
                with Sys_error _ -> ())
              levels;
            (try Sys.remove checkpoint with Sys_error _ -> ());
            Ok outcome.Sketch.Build.degraded))))

(* ------------------------------------------------------------------ *)
(* Discovery                                                            *)
(* ------------------------------------------------------------------ *)

(* Names with live ingestion state in [dir] — a WAL, a manifest, or
   both.  How the server finds engines to reopen after a restart. *)
let discover ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    let names = Hashtbl.create 8 in
    Array.iter
      (fun file ->
        match Wal.wal_name file with
        | Some name -> Hashtbl.replace names name ()
        | None -> (
          match manifest_name file with
          | Some name -> Hashtbl.replace names name ()
          | None -> ()))
      files;
    List.sort compare (Hashtbl.fold (fun name () acc -> name :: acc) names [])
