(** The brownout controller: adaptive overload degradation for
    [treesketch serve].

    Observes per-request latency and instantaneous queue depth, folds
    them into a pressure number, and steps a server-wide {e degradation
    level} — the minimum ladder rung ({!Catalog.tier_for}) answers are
    served from.  Under overload the server gets {e coarser}, not
    slower: a smaller synopsis evaluates faster, which drains the queue
    that created the pressure in the first place (the paper's
    budget/accuracy dial used as a runtime control loop).

    Pressure is
    [max (ewma_latency / target_latency) (queue_depth / depth_high)];
    the level steps up by one when pressure crosses [high], back down
    below [low], holding [dwell] seconds between steps (hysteresis).

    A separate EWMA over {e coarsest-tier} request latencies feeds
    {!admit}: deadline-aware admission refuses only requests whose
    remaining deadline cannot be met even by the cheapest answer the
    server can give.

    Thread-safe; one instance per server. *)

type config = {
  max_level : int;  (** coarsest level the controller may reach *)
  target_latency : float;
      (** seconds a healthy request should take; the latency EWMA is
          measured against it *)
  depth_high : int;  (** queue depth that alone means pressure 1.0 *)
  high : float;  (** step up at/above this pressure *)
  low : float;  (** step down at/below this pressure *)
  alpha : float;  (** EWMA smoothing factor, in (0, 1] *)
  dwell : float;  (** minimum seconds between level changes *)
}

val default_config : config
(** 4 levels (0-3), 50ms target, depth 8, watermarks 1.0/0.5,
    alpha 0.3, 250ms dwell. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument on nonsensical config (negative levels,
    non-positive target, [low >= high], alpha outside (0, 1]). *)

val observe : ?coarsest:bool -> t -> queue_depth:int -> latency:float -> unit
(** Feed one completed request: its service latency (seconds) and the
    queue depth behind it.  [coarsest] marks a request served at the
    coarsest available tier — those latencies train the admission
    estimate separately. *)

val level : t -> int
(** The current degradation level; 0 = undegraded. *)

val pressure : t -> float
(** The last computed pressure (diagnostics). *)

val admit : t -> deadline:float -> bool
(** [admit t ~deadline] is [false] only when [deadline] (remaining
    seconds) is below the coarsest-tier latency estimate — the request
    would blow its deadline even fully degraded.  Always [true] until
    coarsest-tier samples exist. *)

val describe : t -> string
(** One-line state for logs and HEALTH:
    [level=<d> pressure=<f> ewma=<f>ms coarse=<f>ms]. *)
