(* A resilient line-protocol client.

   Everything here exists to keep one promise: [request] always returns
   — a response line, or a typed client-side error — within a bounded
   time, no matter what the transport does.  Connects are non-blocking
   with a timeout; receives go through [select] against the request
   deadline; failures close the connection (a timed-out request leaves
   the stream desynchronized — the safe state is "no connection") and
   retry on the next socket under capped, jittered backoff. *)

type config = {
  connect_timeout : float;
  request_timeout : float;
  attempts : int;
  backoff_base : float;
  backoff_cap : float;
  jitter_seed : int;
  retry_unsafe : bool;
  breaker_threshold : int;
  breaker_cooldown : float;
}

let default_config =
  {
    connect_timeout = 1.0;
    request_timeout = 5.0;
    attempts = 4;
    backoff_base = 0.05;
    backoff_cap = 1.0;
    jitter_seed = 0;
    retry_unsafe = false;
    breaker_threshold = 5;
    breaker_cooldown = 2.0;
  }

type conn = {
  fd : Unix.file_descr;
  residue : Buffer.t;
      (* bytes read past the last newline — the start of the next
         response if the server ever pipelines *)
}

(* Per-(endpoint, synopsis) circuit breaker.  A synopsis whose queries
   keep killing pool workers (or timing out client-side) is a hazard:
   every probe costs the server a worker fork and this client a full
   request timeout.  After [breaker_threshold] consecutive such
   failures the breaker opens and requests for that synopsis AT THAT
   ENDPOINT fail fast locally; after a jittered cooldown one half-open
   probe is let through — its success closes the breaker, its failure
   re-opens it for another cooldown.  Keying by endpoint too matters
   for failover clients: a synopsis crashing workers on one member
   says nothing about its replica on another, and a synopsis-only key
   would let one sick member fail-fast requests the healthy members
   could answer. *)
type breaker_state =
  | Closed
  | Open of { until : float }
  | Half_open

type breaker = {
  mutable state : breaker_state;
  mutable consecutive : int;  (* worker-crash / deadline failures in a row *)
}

type t = {
  config : config;
  endpoints : string array;
  mutable cursor : int;  (* endpoint the next connect tries first *)
  mutable conn : conn option;
  mutable last_endpoint : string option;
      (* endpoint of the most recent successful connect within the
         current request — who a breaker outcome is attributed to *)
  rng : Random.State.t;  (* jitter only — seeded, so tests replay *)
  breakers : (string * string, breaker) Hashtbl.t;
      (* (endpoint, synopsis name) -> breaker *)
}

type error =
  | Deadline of string
  | Io of string
  | Bad_response of string
  | Breaker_open of string

let error_to_string = function
  | Deadline msg -> "deadline: " ^ msg
  | Io msg -> "io: " ^ msg
  | Bad_response msg -> "bad response: " ^ msg
  | Breaker_open msg -> "breaker open: " ^ msg

let error_to_fault = function
  | Deadline msg -> Xmldoc.Fault.Deadline { stage = msg; elapsed = 0.0 }
  | Io msg -> Xmldoc.Fault.Io_error { path = "<client>"; message = msg }
  | Bad_response msg ->
    Xmldoc.Fault.Io_error { path = "<client>"; message = "bad response: " ^ msg }
  | Breaker_open msg ->
    Xmldoc.Fault.Io_error { path = "<client>"; message = "breaker open: " ^ msg }

let create ?(config = default_config) paths =
  if paths = [] then invalid_arg "Client.create: no server sockets";
  if config.attempts < 1 then invalid_arg "Client.create: attempts must be >= 1";
  (* a write to a server that died mid-conversation must come back as
     EPIPE — which the retry loop turns into a reconnect — not as
     SIGPIPE killing the whole client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  {
    config;
    endpoints = Array.of_list paths;
    cursor = 0;
    conn = None;
    last_endpoint = None;
    rng = Random.State.make [| config.jitter_seed |];
    breakers = Hashtbl.create 8;
  }

(* Verbs whose effects are the same once or twice: safe to resend even
   when the first copy may have been executed.  RELOAD rescans to the
   same fixpoint; QUERY/ANSWER are pure reads.  BUILD is absent — a
   resent BUILD can kill and restart a half-finished build — and QUIT
   is absent because resending it to a *different* server after
   failover would shut down a healthy one.  INGEST is absent too:
   durable is not idempotent — the first copy may have been logged and
   acknowledged into a dead socket, and a blind resend would append the
   record twice. *)
let idempotent_verbs =
  [ "PING"; "HEALTH"; "LIST"; "STAT"; "QUERY"; "ANSWER"; "JOBS"; "RELOAD" ]

let verb_of line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> String.uppercase_ascii line
  | Some i -> String.uppercase_ascii (String.sub line 0 i)

let idempotent line = List.mem (verb_of line) idempotent_verbs

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close t =
  match t.conn with
  | None -> ()
  | Some c ->
    close_quietly c.fd;
    t.conn <- None

(* ------------------------------------------------------------------ *)
(* Connect with timeout + failover cursor                              *)
(* ------------------------------------------------------------------ *)

let connect_one t path =
  (* the one network edge that is neither a read nor a write: dialing
     the server.  Injectable so chaos runs can exercise the failover
     loop (and the coordinator's scatter path) without a dead socket. *)
  match Xmldoc.Io_fault.tap Xmldoc.Io_fault.Connect ~path with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  match
    Unix.set_nonblock fd;
    Unix.connect fd (Unix.ADDR_UNIX path)
  with
  | () ->
    Unix.clear_nonblock fd;
    Ok fd
  | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) -> (
    (* wait for the connect to resolve, but never longer than the
       connect timeout *)
    match Unix.select [] [ fd ] [] t.config.connect_timeout with
    | [], [], [] ->
      close_quietly fd;
      Error "connect timed out"
    | _ -> (
      match Unix.getsockopt_error fd with
      | None ->
        Unix.clear_nonblock fd;
        Ok fd
      | Some e ->
        close_quietly fd;
        Error (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      close_quietly fd;
      Error (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) ->
    close_quietly fd;
    Error (Unix.error_message e)

(* Try every endpoint once, starting at the cursor; stick (cursor stays)
   on success so a healthy server keeps its traffic. *)
let connect t =
  let n = Array.length t.endpoints in
  let rec go tried last_err =
    if tried >= n then Error (Io ("connect: " ^ last_err))
    else
      let i = (t.cursor + tried) mod n in
      match connect_one t t.endpoints.(i) with
      | Ok fd ->
        t.cursor <- i;
        t.last_endpoint <- Some t.endpoints.(i);
        let c = { fd; residue = Buffer.create 256 } in
        t.conn <- Some c;
        Ok c
      | Error msg ->
        go (tried + 1) (t.endpoints.(i) ^ ": " ^ msg)
  in
  match t.conn with
  | Some c ->
    t.last_endpoint <- Some t.endpoints.(t.cursor);
    Ok c
  | None -> go 0 "no endpoints"

(* ------------------------------------------------------------------ *)
(* Deadline-bounded send / receive                                     *)
(* ------------------------------------------------------------------ *)

(* Every blocking step checks the wall-clock deadline; [`Deadline] and
   [`Io] are distinguished because only the former maps to exit 4. *)

let send_all fd data ~deadline =
  let len = Bytes.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      let budget = deadline -. Unix.gettimeofday () in
      if budget <= 0.0 then Error (`Deadline "send")
      else
        match Unix.select [] [ fd ] [] budget with
        | _, [], _ -> Error (`Deadline "send")
        | _ -> (
          match Unix.write fd data off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error (EINTR, _, _) -> go off
          | exception Unix.Unix_error (e, _, _) ->
            Error (`Io ("write: " ^ Unix.error_message e)))
        | exception Unix.Unix_error (EINTR, _, _) -> go off
        | exception Unix.Unix_error (e, _, _) ->
          Error (`Io ("select: " ^ Unix.error_message e))
  in
  go 0

let recv_line c ~deadline =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let buf = Buffer.contents c.residue in
    match String.index_opt buf '\n' with
    | Some i ->
      let line = String.sub buf 0 i in
      Buffer.clear c.residue;
      Buffer.add_substring c.residue buf (i + 1) (String.length buf - i - 1);
      (* a bare CR before the newline is tolerated, not required *)
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Ok line
    | None -> (
      let budget = deadline -. Unix.gettimeofday () in
      if budget <= 0.0 then Error (`Deadline "receive")
      else
        match Unix.select [ c.fd ] [] [] budget with
        | [], _, _ -> Error (`Deadline "receive")
        | _ -> (
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            if Buffer.length c.residue > 0 then
              Error (`Bad_response "connection closed mid-line")
            else Error (`Io "connection closed")
          | n ->
            Buffer.add_subbytes c.residue chunk 0 n;
            go ()
          | exception Unix.Unix_error (EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) ->
            Error (`Io ("read: " ^ Unix.error_message e)))
        | exception Unix.Unix_error (EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
          Error (`Io ("select: " ^ Unix.error_message e)))
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The retry loop                                                      *)
(* ------------------------------------------------------------------ *)

let backoff t attempt =
  (* attempt 1 failed -> base, doubling, capped; jitter in [0.5, 1.0]
     so synchronized clients don't stampede a restarting server *)
  let raw =
    Float.min t.config.backoff_cap
      (t.config.backoff_base *. (2. ** float_of_int (attempt - 1)))
  in
  let jitter = 0.5 +. (Random.State.float t.rng 1.0 /. 2.0) in
  Unix.sleepf (raw *. jitter)

(* The server answering [error overloaded ...] is a transient shed, not
   an answer to the question asked: worth retrying elsewhere for
   idempotent requests. *)
let is_overloaded_response line =
  String.length line >= 16 && String.sub line 0 16 = "error overloaded"

(* The server answering [error ingest-deferred ...] shed a MUTATION —
   and, by the protocol's contract, retained nothing of it.  That is
   what makes the resend safe even though mutations are not idempotent:
   there is no first copy to duplicate.  The verbs this applies to. *)
let mutation_verbs = [ "INGEST"; "DELETE"; "UPDATE" ]

let is_deferred_response line =
  String.length line >= 21 && String.sub line 0 21 = "error ingest-deferred"

(* The [retry-after=<ms>] token of an [error ingest-deferred] line —
   how long the server asks this client to back off before resending.
   [None] when absent or malformed (older servers). *)
let retry_after_ms line =
  List.fold_left
    (fun acc word ->
      if String.length word > 12 && String.sub word 0 12 = "retry-after=" then
        match
          int_of_string_opt (String.sub word 12 (String.length word - 12))
        with
        | Some ms when ms >= 0 -> Some ms
        | _ -> acc
      else acc)
    None
    (String.split_on_char ' ' line)

(* ------------------------------------------------------------------ *)
(* Per-synopsis circuit breaker                                        *)
(* ------------------------------------------------------------------ *)

let breaker_enabled t = t.config.breaker_threshold > 0

let response_class line =
  match String.split_on_char ' ' line with
  | "error" :: cls :: _ -> Some cls
  | _ -> None

(* What counts against the breaker: the server reporting a worker
   crash for this synopsis, or the request timing out client-side (a
   wedged worker looks exactly like this from here).  Server-side
   errors like [not-found] or [poisoned] are cheap, definitive answers
   — no point failing fast on those — and transport errors are the
   failover loop's business, not the breaker's. *)
let breaker_failure = function
  | Error (Deadline _) -> true
  | Error (Io _ | Bad_response _ | Breaker_open _) -> false
  | Ok line -> response_class line = Some "worker-crash"

(* The endpoint the next connect will try first: the live connection's
   target when one exists, otherwise wherever the failover cursor
   points.  This is who a breaker gate must consult — the whole point
   of per-endpoint keys is that an open breaker on one member must not
   shed requests headed for another. *)
let next_endpoint t = t.endpoints.(t.cursor)

let breaker_state ?endpoint t name =
  let endpoint = match endpoint with Some e -> e | None -> next_endpoint t in
  Option.map
    (fun b ->
      match b.state with
      | Closed -> `Closed
      | Open _ -> `Open
      | Half_open -> `Half_open)
    (Hashtbl.find_opt t.breakers (endpoint, name))

(* Admit the request, or fail fast?  An elapsed cooldown admits exactly
   one half-open probe (the client is single-threaded per [t], so "the
   next request" is the probe). *)
let breaker_gate t ~endpoint name =
  match Hashtbl.find_opt t.breakers (endpoint, name) with
  | None -> Ok ()
  | Some b -> (
    match b.state with
    | Closed | Half_open -> Ok ()
    | Open { until } ->
      let now = Unix.gettimeofday () in
      if now >= until then begin
        b.state <- Half_open;
        Ok ()
      end
      else
        Error
          (Breaker_open
             (Printf.sprintf
                "synopsis %S at %s: failing fast for another %.2fs after %d \
                 consecutive worker-crash/deadline failures"
                name endpoint (until -. now) b.consecutive)))

let breaker_note t ~endpoint name result =
  let b =
    match Hashtbl.find_opt t.breakers (endpoint, name) with
    | Some b -> b
    | None ->
      let b = { state = Closed; consecutive = 0 } in
      Hashtbl.add t.breakers (endpoint, name) b;
      b
  in
  if breaker_failure result then begin
    b.consecutive <- b.consecutive + 1;
    let trip () =
      (* jittered cooldown in [1.0, 1.5) x the configured value, from
         the seeded rng: synchronized clients don't re-probe a
         recovering server in lockstep, and tests replay exactly *)
      let jitter = 1.0 +. (Random.State.float t.rng 1.0 /. 2.0) in
      b.state <-
        Open { until = Unix.gettimeofday () +. (t.config.breaker_cooldown *. jitter) }
    in
    match b.state with
    | Half_open -> trip () (* the probe failed: straight back to open *)
    | Closed when b.consecutive >= t.config.breaker_threshold -> trip ()
    | Closed | Open _ -> ()
  end
  else begin
    (* any definitive response — including server-side errors — proves
       the path works again *)
    b.consecutive <- 0;
    b.state <- Closed
  end

let request_unchecked t line =
  let retryable = t.config.retry_unsafe || idempotent line in
  (* re-established below by the first successful connect: a request
     that never reached any endpoint must not be attributed to one *)
  t.last_endpoint <- None;
  let t0 = Unix.gettimeofday () in
  (* Deadline propagation: time burned here — connect timeouts, backoff
     sleeps, earlier failed attempts — comes out of the caller's
     [-deadline] before the line is forwarded.  Sending it verbatim
     would let a retry grant the server more budget than the caller has
     left, so a request that already spent 4 of its 5 seconds failing
     over could still occupy a server for 5 more. *)
  let payload () =
    let elapsed = Unix.gettimeofday () -. t0 in
    Bytes.of_string (Protocol.with_remaining_deadline line ~elapsed ^ "\n")
  in
  let rec attempt k ~may_retry_midflight =
    let fail err =
      (* the stream may hold a half response: reconnect from scratch *)
      close t;
      if k < t.config.attempts && may_retry_midflight then begin
        backoff t k;
        (* rotate so the retry prefers the next endpoint — the current
           one just failed us *)
        t.cursor <- (t.cursor + 1) mod Array.length t.endpoints;
        attempt (k + 1) ~may_retry_midflight
      end
      else
        Error
          (match err with
          | `Deadline msg ->
            Deadline (Printf.sprintf "%s (attempt %d/%d)" msg k t.config.attempts)
          | `Io msg -> Io (Printf.sprintf "%s (attempt %d/%d)" msg k t.config.attempts)
          | `Bad_response msg ->
            Bad_response (Printf.sprintf "%s (attempt %d/%d)" msg k t.config.attempts))
    in
    match connect t with
    | Error (Io msg) when k < t.config.attempts ->
      (* nothing was ever sent: always safe to retry, even BUILD *)
      backoff t k;
      t.cursor <- (t.cursor + 1) mod Array.length t.endpoints;
      ignore msg;
      attempt (k + 1) ~may_retry_midflight
    | Error e -> Error e
    | Ok c -> (
      let deadline = Unix.gettimeofday () +. t.config.request_timeout in
      match send_all c.fd (payload ()) ~deadline with
      | Error err -> fail err
      | Ok () -> (
        match recv_line c ~deadline with
        | Error err -> fail err
        | Ok response ->
          if is_overloaded_response response && retryable && k < t.config.attempts
          then begin
            (* don't camp on a shedding server *)
            close t;
            backoff t k;
            t.cursor <- (t.cursor + 1) mod Array.length t.endpoints;
            attempt (k + 1) ~may_retry_midflight
          end
          else if
            is_deferred_response response
            && List.mem (verb_of line) mutation_verbs
            && k < t.config.attempts
          then begin
            (* write-pressure shed: the server retained nothing, so the
               resend cannot duplicate the mutation.  Honor retry-after
               with upward jitter (never resend early), keep the
               connection AND the cursor: a mutation targets one
               server's WAL — failing over would write elsewhere. *)
            (match retry_after_ms response with
            | Some ms when ms > 0 ->
              let jitter = 1.0 +. (Random.State.float t.rng 1.0 /. 2.0) in
              Unix.sleepf (float_of_int ms /. 1000. *. jitter)
            | Some _ | None -> backoff t k);
            attempt (k + 1) ~may_retry_midflight
          end
          else Ok response))
  in
  attempt 1 ~may_retry_midflight:retryable

let request t line =
  match if breaker_enabled t then Protocol.query_target line else None with
  | None -> request_unchecked t line
  | Some name -> (
    (* gate against the endpoint this request will actually dial first;
       failover mid-request may still land elsewhere, and the outcome
       is then attributed to the endpoint of the final attempt *)
    match breaker_gate t ~endpoint:(next_endpoint t) name with
    | Error e -> Error e
    | Ok () ->
      let result = request_unchecked t line in
      (match t.last_endpoint with
      | Some endpoint -> breaker_note t ~endpoint name result
      | None -> () (* no connect ever landed: no endpoint to blame *));
      result)
