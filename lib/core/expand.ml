module Tree = Xmldoc.Tree

let exact (s : Synopsis.t) =
  let memo : Tree.t option array = Array.make (Synopsis.num_nodes s) None in
  let in_progress = Array.make (Synopsis.num_nodes s) false in
  let rec subtree u =
    match memo.(u) with
    | Some t -> t
    | None ->
      if in_progress.(u) then
        invalid_arg "Expand.exact: cyclic synopsis";
      in_progress.(u) <- true;
      let children =
        Array.fold_right
          (fun (v, k) acc ->
            if not (Float.equal k (Float.round k)) then
              invalid_arg "Expand.exact: non-integral edge count";
            let t = subtree v in
            let rec add n acc = if n = 0 then acc else add (n - 1) (t :: acc) in
            add (int_of_float k) acc)
          (Synopsis.edges s u) []
      in
      in_progress.(u) <- false;
      let t = Tree.make (Synopsis.label s u) children in
      memo.(u) <- Some t;
      t
  in
  subtree s.root

type partial = {
  tree : Tree.t;
  truncated : bool;
  nodes : int;
}

let partial ?(max_nodes = 1_000_000) ?budget (s : Synopsis.t) =
  let budget =
    match budget with Some b -> b | None -> Xmldoc.Budget.unlimited ()
  in
  let built = ref 0 in
  let truncated = ref false in
  (* Reserve one tree node against both caps; a refusal truncates the
     expansion (remaining copies are simply not built). *)
  let grant () =
    if !built < max_nodes && Xmldoc.Budget.take_node budget then begin
      incr built;
      true
    end
    else begin
      truncated := true;
      false
    end
  in
  (* Build [m] copies of node [u].  Copies differ only in how the
     rounded child totals are spread, so at most a handful of distinct
     shapes exist per call, but we keep the code simple and build each
     copy; [max_nodes] bounds the total work. *)
  let rec copies depth u m =
    if m <= 0 then []
    else if depth > 4096 then begin
      (* a cycle survived the count decay: cut it *)
      truncated := true;
      []
    end
    else begin
      let granted =
        let k = ref 0 in
        while !k < m && grant () do
          incr k
        done;
        !k
      in
      if granted = 0 then []
      else begin
        let m = granted in
        (* For each edge, the total number of children across the m
           copies, rounded once (largest-remainder at the extent level). *)
        let totals =
          Array.map
            (fun (v, k) -> (v, int_of_float (Float.round (float_of_int m *. k))))
            (Synopsis.edges s u)
        in
        (* Children trees per edge, built in bulk then dealt out. *)
        let pools =
          Array.map
            (fun (v, total) -> (v, ref (copies (depth + 1) v total), total))
            totals
        in
        List.init m (fun i ->
            let children = ref [] in
            Array.iter
              (fun (_, pool, total) ->
                (* copy i receives ceil or floor of total/m *)
                let base = total / m and extra = total mod m in
                let mine = base + if i < extra then 1 else 0 in
                let rec take n =
                  if n > 0 then
                    match !pool with
                    | [] -> ()
                    | t :: rest ->
                      pool := rest;
                      children := t :: !children;
                      take (n - 1)
                in
                take mine)
              pools;
            Tree.make (Synopsis.label s u) (List.rev !children))
      end
    end
  in
  let tree =
    match copies 0 s.root 1 with
    | [ t ] -> t
    | _ ->
      (* even the root was refused (node cap 0 or dead budget): the
         smallest honest partial answer is the bare root *)
      truncated := true;
      Tree.make (Synopsis.label s s.root) []
  in
  { tree; truncated = !truncated; nodes = !built }

let approximate ?max_nodes (s : Synopsis.t) =
  let p = partial ?max_nodes s in
  if p.truncated then
    invalid_arg "Expand.approximate: expansion exceeds max_nodes";
  p.tree
