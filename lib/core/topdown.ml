(* Top-down construction: label-split start, error-greedy splits.

   The working state is a partition of stable-summary classes, as in
   {!Cluster}, but only the per-cluster squared error (children part)
   is tracked: splits never change other clusters' variances except
   through the re-bucketing of their dimensions, which is recomputed
   for the affected parents. *)

(* Child counts of stable class [s] grouped by current cluster. *)
let signature stable assign s =
  let local : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (tgt, k) ->
      let c = assign.(tgt) in
      match Hashtbl.find_opt local c with
      | Some cell -> cell := !cell +. k
      | None -> Hashtbl.add local c (ref k))
    (Synopsis.edges stable s);
  local

type cluster_stats = {
  sq : float;  (* children-part squared error *)
  edges : int;  (* distinct target clusters *)
  count : float;
}

let stats_of stable assign members =
  let acc : (int, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let count = ref 0. in
  List.iter
    (fun s ->
      let n_s = Synopsis.count stable s in
      count := !count +. n_s;
      Hashtbl.iter
        (fun tgt k ->
          let sum, sumsq =
            match Hashtbl.find_opt acc tgt with
            | Some cell -> cell
            | None ->
              let cell = (ref 0., ref 0.) in
              Hashtbl.add acc tgt cell;
              cell
          in
          sum := !sum +. (n_s *. !k);
          sumsq := !sumsq +. (n_s *. !k *. !k))
        (signature stable assign s))
    members;
  let sq =
    Hashtbl.fold
      (fun _ (sum, sumsq) total -> total +. !sumsq -. (!sum *. !sum /. !count))
      acc 0.
  in
  { sq; edges = Hashtbl.length acc; count = !count }

(* Split [members] on the dimension with the highest variance, at its
   mean; None when structurally homogeneous. *)
let split_members stable assign members =
  if List.length members < 2 then None
  else begin
    let acc : (int, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
    let total = ref 0. in
    List.iter
      (fun s ->
        let w = Synopsis.count stable s in
        total := !total +. w;
        Hashtbl.iter
          (fun tgt k ->
            let sx, sxx =
              match Hashtbl.find_opt acc tgt with
              | Some cell -> cell
              | None ->
                let cell = (ref 0., ref 0.) in
                Hashtbl.add acc tgt cell;
                cell
            in
            sx := !sx +. (w *. !k);
            sxx := !sxx +. (w *. !k *. !k))
          (signature stable assign s))
      members;
    let best = ref None in
    Hashtbl.iter
      (fun tgt (sx, sxx) ->
        let mean = !sx /. !total in
        let var = (!sxx /. !total) -. (mean *. mean) in
        match !best with
        | Some (_, _, bv) when bv >= var -> ()
        | _ -> if var > 1e-12 then best := Some (tgt, mean, var))
      acc;
    match !best with
    | None -> None
    | Some (tgt, mean, _) ->
      let value s =
        match Hashtbl.find_opt (signature stable assign s) tgt with
        | Some k -> !k
        | None -> 0.
      in
      let lo, hi = List.partition (fun s -> value s <= mean) members in
      if lo = [] || hi = [] then None else Some (lo, hi)
  end

let build ?cancel stable ~budget =
  let cancel =
    match cancel with Some b -> b | None -> Xmldoc.Budget.unlimited ()
  in
  let n_stable = Synopsis.num_nodes stable in
  let parents = Synopsis.parents stable in
  (* label-split initial partition *)
  let by_label : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let assign = Array.make n_stable 0 in
  let n = ref 0 in
  for s = 0 to n_stable - 1 do
    let l = Xmldoc.Label.to_int (Synopsis.label stable s) in
    (match Hashtbl.find_opt by_label l with
    | Some c -> assign.(s) <- c
    | None ->
      Hashtbl.add by_label l !n;
      assign.(s) <- !n;
      incr n)
  done;
  let members : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  for s = n_stable - 1 downto 0 do
    match Hashtbl.find_opt members assign.(s) with
    | Some l -> l := s :: !l
    | None -> Hashtbl.add members assign.(s) (ref [ s ])
  done;
  let stats : (int, cluster_stats) Hashtbl.t = Hashtbl.create 64 in
  let recompute c = Hashtbl.replace stats c (stats_of stable assign !(Hashtbl.find members c)) in
  Hashtbl.iter (fun c _ -> recompute c) members;
  let size () =
    Hashtbl.fold
      (fun _ st acc ->
        acc + Synopsis.node_bytes + (Synopsis.edge_bytes * st.edges))
      stats 0
  in
  (* affected parents of a cluster: clusters owning a stable parent of
     one of its members *)
  let parent_clusters c =
    let set = Hashtbl.create 8 in
    List.iter
      (fun s ->
        Array.iter (fun p -> Hashtbl.replace set assign.(p) ()) parents.(s))
      !(Hashtbl.find members c);
    set
  in
  let continue_ = ref true in
  (* [poll], not [tick]: one split is itself expensive, so the clock is
     consulted on every iteration.  A stopped budget leaves the current
     (coarser) partition — always a valid synopsis — as the result. *)
  while !continue_ && size () < budget && Xmldoc.Budget.poll cancel do
    (* split the worst cluster that can be split *)
    let candidates =
      Hashtbl.fold (fun c st acc -> (st.sq, c) :: acc) stats []
      |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)
    in
    let rec try_split = function
      | [] -> false
      | (sq, c) :: rest ->
        if sq <= 1e-12 then false
        else begin
          match split_members stable assign !(Hashtbl.find members c) with
          | None -> try_split rest
          | Some (lo, hi) ->
            let fresh = !n in
            incr n;
            Hashtbl.replace members c (ref lo);
            Hashtbl.add members fresh (ref hi);
            List.iter (fun s -> assign.(s) <- fresh) hi;
            (* re-bucketed dimensions: parents of both halves *)
            recompute c;
            recompute fresh;
            Hashtbl.iter (fun p () -> recompute p) (parent_clusters c);
            Hashtbl.iter (fun p () -> recompute p) (parent_clusters fresh);
            true
        end
    in
    continue_ := try_split candidates
  done;
  (* export *)
  let ids = Hashtbl.fold (fun c _ acc -> c :: acc) members [] in
  let index = Hashtbl.create 64 in
  List.iteri (fun i c -> Hashtbl.add index c i) ids;
  let nodes =
    Array.of_list
      (List.map
         (fun c ->
           let mem = !(Hashtbl.find members c) in
           let count =
             List.fold_left (fun a s -> a +. Synopsis.count stable s) 0. mem
           in
           let acc : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
           List.iter
             (fun s ->
               let n_s = Synopsis.count stable s in
               Hashtbl.iter
                 (fun tgt k ->
                   match Hashtbl.find_opt acc tgt with
                   | Some cell -> cell := !cell +. (n_s *. !k)
                   | None -> Hashtbl.add acc tgt (ref (n_s *. !k)))
                 (signature stable assign s))
             mem;
           let edges =
             Hashtbl.fold
               (fun tgt sum acc ->
                 (Hashtbl.find index tgt, !sum /. count) :: acc)
               acc []
           in
           {
             Synopsis.label = Synopsis.label stable (List.hd mem);
             count;
             edges = Array.of_list edges;
           })
         ids)
  in
  let total_sq = Hashtbl.fold (fun _ st acc -> acc +. st.sq) stats 0. in
  ( Synopsis.make ~root:(Hashtbl.find index assign.(stable.Synopsis.root)) nodes,
    total_sq )
