(** Plain-text persistence for synopses, used by the command-line
    tools and the serving runtime's snapshot store.

    Versions 1-3 share the record grammar:
    {v
    treesketch 1          treesketch 2          treesketch 3
                                                meta <key> <value>
    root <id>             root <id>             root <id>
    node <id> <count> <label>
    edge <from> <to> <avg>
                          crc <8-hex-digit CRC-32 of all preceding bytes>
    v}

    Version 1 is the legacy CLI format.  Version 2 is the {e snapshot}
    format of the crash-safe store.  Version 3 is the {e checkpoint}
    format of resumable TSBUILD: version 2 plus [meta] records carrying
    build metadata (duplicate keys rejected, values opaque single-line
    strings).  In versions 2 and 3 the mandatory [crc] trailer is both
    an integrity checksum (CRC-32, as in zlib) and an end-of-snapshot
    marker, so a write cut short at any byte — missing trailer — or
    corrupted in place — checksum mismatch — is rejected as
    [Corrupt_synopsis], and anything {e after} the trailer (a
    concatenated or torn rewrite) is trailing garbage.  Both versions
    reject duplicate headers and duplicate [root] records.

    Version 4 is the {e ladder} format: several budget tiers of the same
    synopsis in one file, for brownout serving.  A checksummed manifest
    frames complete version-2 payloads:
    {v
    treesketch 4
    tier <i> budget=<bytes> bytes=<payload length> crc=<8-hex CRC-32>
    ...                      (dense indexes, budgets strictly decreasing)
    crc <8-hex-digit CRC-32 of the manifest above>
    <tier-0 version-2 snapshot><tier-1 version-2 snapshot>...
    v}
    Tier 0 is the finest (largest budget).  Each payload carries its own
    version-2 trailer {e and} is pinned by the [crc=] in the manifest,
    so a torn write is caught whether it cuts the manifest or any
    payload.  Versions 1-3 parse exactly as before; they reject a
    version-4 header as unsupported, and vice versa.

    Loading is total and validating: the [*_res] entry points never
    raise — every malformed line is reported as
    [Fault.Corrupt_synopsis] carrying the 1-based line number and the
    offending line's text, resource bounds from the supplied
    [Xmldoc.Limits.t] are enforced, and every successfully decoded
    synopsis has passed {!Synopsis.validate} (so downstream code can
    index it without bounds anxiety).  Faults from {!load_res} always
    name the file they came from. *)

val save : string -> Synopsis.t -> unit
(** Write the synopsis to a file (version 1, non-atomic). *)

val save_atomic :
  ?meta:(string * string) list -> string -> Synopsis.t -> (unit, Xmldoc.Fault.t) result
(** Crash-safe snapshot write (version 2, or version 3 when [meta] is
    supplied): the checksummed snapshot is written to a unique [.tmp]
    file in the destination directory, fsynced, and atomically renamed
    over [path] — a reader (or a post-crash reload) sees the previous
    complete snapshot or the new complete snapshot, never a prefix.
    I/O failures are returned as [Error (Io_error _)] and the temp
    file is removed.  Meta keys must be space-free and values
    newline-free ([Invalid_argument] otherwise). *)

val write_atomic : string -> string -> (unit, Xmldoc.Fault.t) result
(** The raw crash-safe write under {!save_atomic}: publish [text] —
    verbatim, byte for byte — at [path] via the same temp-file + fsync
    + rename discipline.  Exposed for peer snapshot repair, which must
    install a fetched (already-rendered, already-verified) snapshot
    {e byte-identically}, so content hashes converge across a replica
    group. *)

val load_raw_res :
  ?limits:Xmldoc.Limits.t -> string -> (string, Xmldoc.Fault.t) result
(** The file's raw bytes, through the same fault-injection taps and
    [max_bytes] bound as {!load_res} but with {e no} parsing — what
    integrity scrubbing and peer repair hash and stream.  A torn read
    surfaces as a content prefix; callers verify checksums. *)

val load_res : ?limits:Xmldoc.Limits.t -> string -> (Synopsis.t, Xmldoc.Fault.t) result
(** Read and validate a synopsis, accepting either format version.
    Never raises: corrupt input is [Error (Corrupt_synopsis _)], an
    unreadable file [Error (Io_error _)], a violated bound
    [Error (Limit_exceeded _)] or [Error (Deadline _)].  Every fault is
    tagged with [path] (see {!Xmldoc.Fault.with_path}). *)

val of_string_res : ?limits:Xmldoc.Limits.t -> string -> (Synopsis.t, Xmldoc.Fault.t) result
(** In-memory variant of {!load_res} (no path tagging). *)

val load_meta_res :
  ?limits:Xmldoc.Limits.t ->
  string ->
  (Synopsis.t * (string * string) list, Xmldoc.Fault.t) result
(** Like {!load_res} but also returns the [meta] records of a version-3
    checkpoint, in file order (empty for versions 1 and 2). *)

val of_string_meta_res :
  ?limits:Xmldoc.Limits.t ->
  string ->
  (Synopsis.t * (string * string) list, Xmldoc.Fault.t) result
(** In-memory variant of {!load_meta_res} (no path tagging). *)

val load : ?limits:Xmldoc.Limits.t -> string -> Synopsis.t
(** Read a synopsis back.  @raise Failure on malformed input (the
    message includes the offending line), [Sys_error] if the file
    cannot be read. *)

val to_string : Synopsis.t -> string
(** Version-1 rendering (no checksum). *)

val to_snapshot_string : Synopsis.t -> string
(** Version-2 rendering with the [crc] trailer — what {!save_atomic}
    writes. *)

val to_checkpoint_string : meta:(string * string) list -> Synopsis.t -> string
(** Version-3 rendering: [meta] records plus the [crc] trailer — what
    {!save_atomic} writes when given [?meta]. *)

val of_string : ?limits:Xmldoc.Limits.t -> string -> Synopsis.t
(** @raise Failure on malformed input. *)

(** {2 Ladder snapshots (version 4)} *)

val to_ladder_string : (int * Synopsis.t) list -> string
(** Version-4 rendering of [(budget, synopsis)] tiers, finest first.
    @raise Invalid_argument on an empty list or budgets that are not
    strictly decreasing and positive. *)

val save_ladder_atomic :
  string -> (int * Synopsis.t) list -> (unit, Xmldoc.Fault.t) result
(** {!save_atomic}'s crash-safe write (temp file, fsync, rename) of a
    version-4 ladder.  Same argument validation as
    {!to_ladder_string}. *)

val load_ladder_res :
  ?limits:Xmldoc.Limits.t ->
  string ->
  ((int * Synopsis.t) array, Xmldoc.Fault.t) result
(** Read a version-4 ladder back: manifest checksum verified, every
    payload sliced at its declared length, checked against its
    manifest [crc=], parsed and {!Synopsis.validate}d independently.
    Any tear or mismatch anywhere is [Error (Corrupt_synopsis _)] —
    never a partial ladder.  Tiers come back finest first. *)

val of_ladder_string_res :
  ?limits:Xmldoc.Limits.t ->
  string ->
  ((int * Synopsis.t) array, Xmldoc.Fault.t) result
(** In-memory variant of {!load_ladder_res} (no path tagging). *)

(** What {!load_any_res} found in the file. *)
type loaded =
  | Single of Synopsis.t  (** a version-1/2/3 snapshot *)
  | Ladder of (int * Synopsis.t) array
      (** a version-4 ladder, [(budget, synopsis)] finest first *)

val load_any_res :
  ?limits:Xmldoc.Limits.t -> string -> (loaded, Xmldoc.Fault.t) result
(** Sniff the header and dispatch to {!load_res} or
    {!load_ladder_res} — the serving catalog's entry point, so one
    store can mix plain snapshots and ladders. *)

val of_any_string_res :
  ?limits:Xmldoc.Limits.t -> string -> (loaded, Xmldoc.Fault.t) result
(** In-memory variant of {!load_any_res} (no path tagging) — lets the
    integrity scrubber hash the raw bytes once via {!load_raw_res} and
    then verify the same bytes it hashed. *)
