(** Plain-text persistence for synopses, used by the command-line
    tools ([tsbuild] writes, [tsquery] reads).

    Format (line oriented):
    {v
    treesketch 1
    root <id>
    node <id> <count> <label>
    edge <from> <to> <avg>
    v}

    Loading is total and validating: the [*_res] entry points never
    raise — every malformed line is reported as
    [Fault.Corrupt_synopsis] carrying the 1-based line number and the
    offending line's text, resource bounds from the supplied
    [Xmldoc.Limits.t] are enforced, and every successfully decoded
    synopsis has passed {!Synopsis.validate} (so downstream code can
    index it without bounds anxiety). *)

val save : string -> Synopsis.t -> unit
(** Write the synopsis to a file. *)

val load_res : ?limits:Xmldoc.Limits.t -> string -> (Synopsis.t, Xmldoc.Fault.t) result
(** Read and validate a synopsis.  Never raises: corrupt input is
    [Error (Corrupt_synopsis _)], an unreadable file
    [Error (Io_error _)], a violated bound [Error (Limit_exceeded _)]
    or [Error (Deadline _)]. *)

val of_string_res : ?limits:Xmldoc.Limits.t -> string -> (Synopsis.t, Xmldoc.Fault.t) result
(** In-memory variant of {!load_res}. *)

val load : ?limits:Xmldoc.Limits.t -> string -> Synopsis.t
(** Read a synopsis back.  @raise Failure on malformed input (the
    message includes the offending line), [Sys_error] if the file
    cannot be read. *)

val to_string : Synopsis.t -> string

val of_string : ?limits:Xmldoc.Limits.t -> string -> Synopsis.t
(** @raise Failure on malformed input. *)
