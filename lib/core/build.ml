type params = {
  heap_max : int;
  heap_min : int;
  max_pairs_per_group : int;
}

let default_params = { heap_max = 10_000; heap_min = 100; max_pairs_per_group = 200_000 }

type candidate = {
  u : int;
  v : int;
  ver_u : int;
  ver_v : int;
}

let push_candidate cl heap ~heap_max u v =
  match Cluster.delta cl u v with
  | None -> ()
  | Some { errd; sized } ->
    let ratio = errd /. float_of_int sized in
    Dheap.push heap ratio
      { u; v; ver_u = Cluster.version cl u; ver_v = Cluster.version cl v };
    if Dheap.length heap > heap_max then ignore (Dheap.pop_max heap)

(* CREATEPOOL (Figure 6): candidate same-label pairs at increasing
   depth, until all depths are done or the pool is full after a
   complete depth. *)
let create_pool params cl =
  let heap : candidate Dheap.t = Dheap.create () in
  (* group representatives by label *)
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = Xmldoc.Label.to_int (Cluster.label cl r) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add groups key (ref [ r ]))
    (Cluster.alive_ids cl);
  let max_height =
    List.fold_left (fun acc r -> max acc (Cluster.height cl r)) 0 (Cluster.alive_ids cl)
  in
  (* thin a list deterministically to at most [limit] elements *)
  let thin limit l =
    let n = List.length l in
    if n <= limit then l
    else begin
      let stride = (n + limit - 1) / limit in
      List.filteri (fun i _ -> i mod stride = 0) l
    end
  in
  let level = ref 0 in
  let continue_ = ref true in
  while !continue_ && !level <= max_height do
    Hashtbl.iter
      (fun _ group ->
        let eq = List.filter (fun r -> Cluster.height cl r = !level) !group in
        let lower = List.filter (fun r -> Cluster.height cl r < !level) !group in
        (* pair budget per (label, depth) group *)
        let n_eq = List.length eq and n_lo = List.length lower in
        let pairs = (n_eq * (n_eq - 1) / 2) + (n_eq * n_lo) in
        let eq, lower =
          if pairs > params.max_pairs_per_group then begin
            let limit =
              max 2 (int_of_float (sqrt (float_of_int params.max_pairs_per_group)))
            in
            (thin limit eq, thin limit lower)
          end
          else (eq, lower)
        in
        let rec eq_pairs = function
          | [] -> ()
          | u :: rest ->
            List.iter (fun v -> push_candidate cl heap ~heap_max:params.heap_max u v) rest;
            List.iter
              (fun v -> push_candidate cl heap ~heap_max:params.heap_max u v)
              lower;
            eq_pairs rest
        in
        eq_pairs eq)
      groups;
    if Dheap.length heap >= params.heap_max then continue_ := false;
    incr level
  done;
  heap

(* Limit-poll cadence of the merge loop: consulting the clock (and the
   GC counters) costs a system call, so the control budget is polled
   only every [poll_period] candidate pops — the per-pop cost of
   cancellation support is one integer increment.  Tied to the pool
   capacity so that degradation latency is always bounded by a fraction
   of one pool drain, i.e. strictly under one pool regeneration. *)
let poll_period params = max 1 (min 512 (params.heap_max / 64))

(* TSBUILD (Figure 5) with a callback invoked after every applied
   merge, used to snapshot checkpoints, and a control budget [ctl]
   carrying the deadline and the heap-pressure ceiling.  Returns
   [false] iff the budget stopped the build before the space budget (or
   the label-split floor) was reached — the clustering is then left at
   the best state reached so far, which is always a valid synopsis. *)
let compress_gen params cl ~budget ~ctl ~on_merge =
  (* the very first poll catches an already-tripped budget before any
     merge is applied *)
  let stopped = ref (not (Xmldoc.Budget.poll ctl)) in
  let period = poll_period params in
  let since_poll = ref 0 in
  let keep_going () =
    incr since_poll;
    if !since_poll >= period then begin
      since_poll := 0;
      stopped := not (Xmldoc.Budget.poll ctl)
    end;
    not !stopped
  in
  let exhausted = ref false in
  while Cluster.size_bytes cl > budget && (not !exhausted) && not !stopped do
    let heap = create_pool params cl in
    stopped := not (Xmldoc.Budget.poll ctl);
    if Dheap.is_empty heap then exhausted := true
    else if not !stopped then begin
      (* When the whole pool fits under Lh, regenerating it would yield
         the same candidates: drain it completely instead. *)
      let low_mark = if Dheap.length heap <= params.heap_min then 0 else params.heap_min in
      let progressed = ref false in
      let continue_ = ref true in
      while
        !continue_
        && Cluster.size_bytes cl > budget
        && Dheap.length heap > low_mark
        && keep_going ()
      do
        match Dheap.pop_min heap with
        | None -> continue_ := false
        | Some (_, cand) ->
          let u = Cluster.find cl cand.u and v = Cluster.find cl cand.v in
          if u <> v then begin
            if
              u = cand.u && v = cand.v
              && Cluster.version cl u = cand.ver_u
              && Cluster.version cl v = cand.ver_v
            then begin
              ignore (Cluster.merge cl u v);
              progressed := true;
              on_merge ()
            end
            else
              (* stale: re-evaluate against the current clustering *)
              push_candidate cl heap ~heap_max:params.heap_max u v
          end
      done;
      (* A pool that produced no merge at all cannot make progress by
         regeneration either. *)
      if (not !progressed) && (not !stopped) && Dheap.length heap <= low_mark then
        exhausted := true
    end
  done;
  not (!stopped && Cluster.size_bytes cl > budget)

let compress_ctl ?(params = default_params) cl ~budget ~ctl ~on_merge =
  compress_gen params cl ~budget ~ctl ~on_merge

let compress ?(params = default_params) cl ~budget =
  ignore
    (compress_gen params cl ~budget ~ctl:(Xmldoc.Budget.unlimited ())
       ~on_merge:(fun () -> ()))

let build ?params stable ~budget =
  let cl = Cluster.of_stable stable in
  compress ?params cl ~budget;
  Cluster.to_synopsis cl

type outcome = {
  synopsis : Synopsis.t;
  degraded : bool;
}

let invalid_output message =
  (* TSBUILD broke its own invariants — an internal bug, but still
     reported as a structured error rather than an exception. *)
  Xmldoc.Fault.Corrupt_synopsis
    {
      line = 0;
      content = "";
      message = Printf.sprintf "TSBUILD produced an invalid synopsis: %s" message;
    }

let finish cl ~completed =
  let synopsis = Cluster.to_synopsis cl in
  match Synopsis.validate synopsis with
  | Error message -> Error (invalid_output message)
  | Ok () -> Ok { synopsis; degraded = not completed }

let ctl_of ?(limits = Xmldoc.Limits.unlimited) ?max_heap_words () =
  Xmldoc.Budget.of_limits ?max_heap_words limits

let build_res ?(params = default_params) ?limits ?max_heap_words stable ~budget =
  match Synopsis.validate stable with
  | Error message ->
    Error (Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message })
  | Ok () ->
    let cl = Cluster.of_stable stable in
    let ctl = ctl_of ?limits ?max_heap_words () in
    let completed = compress_gen params cl ~budget ~ctl ~on_merge:(fun () -> ()) in
    finish cl ~completed

let build_of_tree ?params tree ~budget = build ?params (Stable.build tree) ~budget

(* Disjoint union of synopses that summarize fragments under one shared
   document root: a single fresh root (count 1) adopts every input
   root's out-edges; all other nodes are copied with their ids offset.
   This is the pre-compression step of delta compaction — the union is
   exact (each input's extents are disjoint sub-forests of the same
   document), and a normal [build_res] pass afterwards compresses it
   back under budget. *)
let merge_disjoint synopses =
  match synopses with
  | [] -> Error "merge of zero synopses"
  | first :: rest ->
    let root_label = Synopsis.label first first.Synopsis.root in
    let mismatched =
      List.exists
        (fun s -> not (Xmldoc.Label.equal (Synopsis.label s s.Synopsis.root) root_label))
        rest
    in
    if mismatched then Error "merge of synopses with different root labels"
    else if
      List.exists
        (fun s ->
          Array.exists
            (fun node ->
              Array.exists (fun (v, _) -> v = s.Synopsis.root) node.Synopsis.edges)
            s.Synopsis.nodes)
        synopses
    then
      (* never produced by a tree summary — the root has no parents *)
      Error "merge of synopses with in-edges on the root"
    else begin
      let total =
        List.fold_left (fun acc s -> acc + Synopsis.num_nodes s - 1) 1 synopses
      in
      let nodes = Array.make total { Synopsis.label = root_label; count = 1.0; edges = [||] } in
      let root_edges = ref [] in
      let offset = ref 1 in
      List.iter
        (fun s ->
          let base = !offset in
          let remap u = base + if u < s.Synopsis.root then u else u - 1 in
          Array.iteri
            (fun u node ->
              let edges =
                Array.map (fun (v, avg) -> (remap v, avg)) node.Synopsis.edges
              in
              if u = s.Synopsis.root then root_edges := edges :: !root_edges
              else nodes.(remap u) <- { node with Synopsis.edges })
            s.Synopsis.nodes;
          offset := base + Synopsis.num_nodes s - 1)
        synopses;
      let edges = Array.concat (List.rev !root_edges) in
      nodes.(0) <- { Synopsis.label = root_label; count = 1.0; edges };
      let merged = Synopsis.make ~root:0 nodes in
      match Synopsis.validate merged with
      | Error message -> Error message
      | Ok () -> Ok merged
    end

(* Subtract the subtrees matched by slash-style label paths from a
   synopsis rooted at the shared document root.  A path [l1; ...; lk]
   is walked as a frontier from the root — step i keeps exactly the
   edge targets labeled [li] — and the edges reaching the final
   frontier are cut.  Nodes left unreachable from the root are dropped
   (ids remapped); a cut target still reachable through other paths
   keeps its node but loses the cut parents' contribution to its count
   (clamped at 0).  On the exact tree-shaped summaries delta levels are
   built from this removes the deleted subtrees precisely; on a
   compressed synopsis — where one class can stand for elements on
   several paths — the subtraction is approximate, like every other
   answer derived from it. *)
let prune_paths synopsis paths =
  let paths = List.filter (fun p -> p <> []) paths in
  if paths = [] then synopsis
  else begin
    let nodes = synopsis.Synopsis.nodes in
    let cut : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    let removed = Array.make (Array.length nodes) 0.0 in
    List.iter
      (fun path ->
        let rec walk frontier = function
          | [] -> ()
          | [ last ] ->
            List.iter
              (fun u ->
                Array.iter
                  (fun (v, avg) ->
                    if Xmldoc.Label.equal (Synopsis.label synopsis v) last then begin
                      if not (Hashtbl.mem cut (u, v)) then begin
                        Hashtbl.add cut (u, v) ();
                        removed.(v) <-
                          removed.(v) +. (Synopsis.count synopsis u *. avg)
                      end
                    end)
                  nodes.(u).Synopsis.edges)
              frontier
          | l :: rest ->
            let next = ref [] in
            List.iter
              (fun u ->
                Array.iter
                  (fun (v, _) ->
                    if
                      Xmldoc.Label.equal (Synopsis.label synopsis v) l
                      && not (List.mem v !next)
                    then next := v :: !next)
                  nodes.(u).Synopsis.edges)
              frontier;
            walk !next rest
        in
        walk [ synopsis.Synopsis.root ] path)
      paths;
    if Hashtbl.length cut = 0 then synopsis
    else begin
      let kept_edges u =
        Array.of_seq
          (Seq.filter
             (fun (v, _) -> not (Hashtbl.mem cut (u, v)))
             (Array.to_seq nodes.(u).Synopsis.edges))
      in
      (* reachability from the root over the surviving edges *)
      let reachable = Array.make (Array.length nodes) false in
      let rec visit u =
        if not reachable.(u) then begin
          reachable.(u) <- true;
          Array.iter (fun (v, _) -> visit v) (kept_edges u)
        end
      in
      visit synopsis.Synopsis.root;
      let remap = Array.make (Array.length nodes) (-1) in
      let kept = ref 0 in
      Array.iteri
        (fun u alive ->
          if alive then begin
            remap.(u) <- !kept;
            incr kept
          end)
        reachable;
      let out = Array.make !kept nodes.(synopsis.Synopsis.root) in
      Array.iteri
        (fun u alive ->
          if alive then begin
            let node = nodes.(u) in
            let count = Float.max 0.0 (node.Synopsis.count -. removed.(u)) in
            let edges =
              Array.map (fun (v, avg) -> (remap.(v), avg)) (kept_edges u)
            in
            out.(remap.(u)) <- { node with Synopsis.count; edges }
          end)
        reachable;
      Synopsis.make ~root:remap.(synopsis.Synopsis.root) out
    end
  end

(* Tombstone-cancelling merge: fold delta levels oldest-first, applying
   each level's tombstones to the accumulated (strictly older) union
   before its own content joins — the merge-time counterpart of the
   query path's per-level subtraction.  The first level's tombstones
   address data older than anything given here and cancel to nothing,
   so a full-stack compaction emits a level that owes no tombstones at
   all: deletion becomes physical reclamation. *)
let merge_tombstoned levels =
  match levels with
  | [] -> Error "merge of zero synopses"
  | (first, _) :: rest ->
    List.fold_left
      (fun acc (s, tombs) ->
        Result.bind acc (fun a -> merge_disjoint [ prune_paths a tombs; s ]))
      (Ok first) rest

(* ------------------------------------------------------------------ *)
(* Crash-safe checkpointing and resume                                  *)
(* ------------------------------------------------------------------ *)

module Checkpoint = struct
  type meta = {
    source : string;
    budget : int;
    params_hash : string;
    merges : int;
  }

  let fingerprint s = Crc32.to_hex (Crc32.string (Serialize.to_string s))

  let hash_params (p : params) =
    Crc32.to_hex
      (Crc32.string
         (Printf.sprintf "heap_max=%d heap_min=%d max_pairs=%d" p.heap_max
            p.heap_min p.max_pairs_per_group))

  type t = {
    synopsis : Synopsis.t;
    meta : meta;
  }

  let to_records m =
    [
      ("source", m.source);
      ("budget", string_of_int m.budget);
      ("params", m.params_hash);
      ("merges", string_of_int m.merges);
    ]

  let corrupt message =
    Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message }

  let of_records kvs =
    let ( let* ) = Result.bind in
    let get key =
      match List.assoc_opt key kvs with
      | Some v -> Ok v
      | None -> Error (corrupt (Printf.sprintf "checkpoint missing meta key %S" key))
    in
    let int_meta key =
      let* v = get key in
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok n
      | _ ->
        Error
          (corrupt (Printf.sprintf "checkpoint meta %s=%S is not a count" key v))
    in
    let* source = get "source" in
    let* params_hash = get "params" in
    let* budget = int_meta "budget" in
    let* merges = int_meta "merges" in
    if budget = 0 then Error (corrupt "checkpoint meta budget=0")
    else Ok { source; budget; params_hash; merges }

  let save path t = Serialize.save_atomic ~meta:(to_records t.meta) path t.synopsis

  let load_res ?limits path =
    match Serialize.load_meta_res ?limits path with
    | Error f -> Error f
    | Ok (synopsis, kvs) -> (
      match of_records kvs with
      | Ok meta -> Ok { synopsis; meta }
      | Error f -> Error (Xmldoc.Fault.with_path path f))
end

let default_checkpoint_every = 256

(* Shared tail of fresh-checkpointed and resumed builds: run the merge
   loop snapshotting the clustering into [checkpoint] every
   [every] merges, plus once on degradation so a successor resumes from
   exactly the best state reached.  Checkpoint writes are best-effort —
   an unwritable journal must not kill the build it exists to
   protect — but each write that does land is atomic and checksummed,
   so a crash at any moment leaves the previous complete checkpoint. *)
let compress_with_checkpoints params cl ~ctl ~checkpoint ~every ~on_checkpoint
    ~(meta : Checkpoint.meta) =
  let merges = ref meta.merges in
  let save_checkpoint () =
    let t =
      {
        Checkpoint.synopsis = Cluster.to_synopsis cl;
        meta = { meta with merges = !merges };
      }
    in
    match Checkpoint.save checkpoint t with
    | Ok () -> on_checkpoint !merges
    | Error _ -> ()
  in
  let on_merge () =
    incr merges;
    if !merges mod every = 0 then save_checkpoint ()
  in
  let completed = compress_gen params cl ~budget:meta.budget ~ctl ~on_merge in
  if not completed then save_checkpoint ();
  completed

let build_checkpointed_res ?(params = default_params) ?limits ?max_heap_words
    ?(checkpoint_every = default_checkpoint_every)
    ?(on_checkpoint = fun (_ : int) -> ()) ~checkpoint stable ~budget =
  if checkpoint_every < 1 then invalid_arg "Build: checkpoint_every must be >= 1";
  match Synopsis.validate stable with
  | Error message ->
    Error (Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message })
  | Ok () ->
    let cl = Cluster.of_stable stable in
    let ctl = ctl_of ?limits ?max_heap_words () in
    let meta =
      {
        Checkpoint.source = Checkpoint.fingerprint stable;
        budget;
        params_hash = Checkpoint.hash_params params;
        merges = 0;
      }
    in
    let completed =
      compress_with_checkpoints params cl ~ctl ~checkpoint
        ~every:checkpoint_every ~on_checkpoint ~meta
    in
    finish cl ~completed

let resume_res ?(params = default_params) ?limits ?max_heap_words
    ?(checkpoint_every = default_checkpoint_every)
    ?(on_checkpoint = fun (_ : int) -> ()) checkpoint =
  if checkpoint_every < 1 then invalid_arg "Build: checkpoint_every must be >= 1";
  match Checkpoint.load_res checkpoint with
  | Error f -> Error f
  | Ok { synopsis; meta } ->
    if meta.params_hash <> Checkpoint.hash_params params then
      Error
        (Xmldoc.Fault.with_path checkpoint
           (Checkpoint.corrupt
              "checkpoint was written under different TSBUILD parameters; \
               resume with the original params or rebuild from scratch"))
    else begin
      (* The checkpointed clustering becomes the new merge base: its
         nodes are exactly the live clusters at checkpoint time, so
         continuing the greedy loop from it extends the original merge
         sequence.  [meta.source] is carried along unchanged so
         repeated crash/resume cycles still identify their document. *)
      let cl = Cluster.of_stable synopsis in
      let ctl = ctl_of ?limits ?max_heap_words () in
      let completed =
        compress_with_checkpoints params cl ~ctl ~checkpoint
          ~every:checkpoint_every ~on_checkpoint ~meta
      in
      finish cl ~completed
    end

let build_with_checkpoints ?(params = default_params) stable ~budgets =
  let sorted = List.sort_uniq (fun a b -> Stdlib.compare b a) budgets in
  let cl = Cluster.of_stable stable in
  let results = Hashtbl.create 8 in
  let remaining = ref sorted in
  let snapshot_reached () =
    let rec loop () =
      match !remaining with
      | b :: rest when Cluster.size_bytes cl <= b ->
        Hashtbl.replace results b (Cluster.to_synopsis cl);
        remaining := rest;
        loop ()
      | _ -> ()
    in
    loop ()
  in
  snapshot_reached ();
  (match !remaining with
  | [] -> ()
  | _ ->
    let final = List.fold_left min max_int sorted in
    ignore
      (compress_gen params cl ~budget:final ~ctl:(Xmldoc.Budget.unlimited ())
         ~on_merge:snapshot_reached));
  (* Budgets below the label-split floor get the smallest synopsis. *)
  let floor = Cluster.to_synopsis cl in
  List.map
    (fun b ->
      match Hashtbl.find_opt results b with
      | Some s -> (b, s)
      | None -> (b, floor))
    budgets

(* ------------------------------------------------------------------ *)
(* Degradation ladders                                                  *)
(* ------------------------------------------------------------------ *)

let ladder_milestones ~budget ~tiers =
  if tiers < 1 then invalid_arg "Build: ladder tiers must be >= 1";
  if budget < 1 then invalid_arg "Build: ladder budget must be >= 1";
  (* budget, budget/2, budget/4, ...: strictly decreasing, stopping
     early once halving bottoms out at 1 byte. *)
  let rec go acc b k =
    if k = 0 || b < 1 then List.rev acc
    else
      match acc with
      | prev :: _ when b >= prev -> List.rev acc
      | _ -> go (b :: acc) (b / 2) (k - 1)
  in
  go [] budget tiers

type ladder_outcome = {
  ladder : (int * Synopsis.t) list;
  ladder_degraded : bool;
}

let build_ladder_res ?(params = default_params) ?limits ?max_heap_words stable
    ~budget ~tiers =
  let milestones = ladder_milestones ~budget ~tiers in
  match Synopsis.validate stable with
  | Error message ->
    Error (Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message })
  | Ok () ->
    let cl = Cluster.of_stable stable in
    let ctl = ctl_of ?limits ?max_heap_words () in
    let results = Hashtbl.create 8 in
    let remaining = ref milestones in
    let snapshot_reached () =
      let rec loop () =
        match !remaining with
        | b :: rest when Cluster.size_bytes cl <= b ->
          Hashtbl.replace results b (Cluster.to_synopsis cl);
          remaining := rest;
          loop ()
        | _ -> ()
      in
      loop ()
    in
    snapshot_reached ();
    let completed =
      match !remaining with
      | [] -> true
      | _ ->
        let final = List.fold_left min max_int milestones in
        compress_gen params cl ~budget:final ~ctl ~on_merge:snapshot_reached
    in
    (* Milestones never reached — label-split floor, or a control budget
       that stopped the loop — get the best (smallest) state reached, so
       a degraded build still publishes a complete, coherent ladder. *)
    let floor = Cluster.to_synopsis cl in
    let ladder =
      List.map
        (fun b ->
          match Hashtbl.find_opt results b with
          | Some s -> (b, s)
          | None -> (b, floor))
        milestones
    in
    let rec validate_all = function
      | [] -> Ok { ladder; ladder_degraded = not completed }
      | (_, s) :: rest -> (
        match Synopsis.validate s with
        | Ok () -> validate_all rest
        | Error message -> Error (invalid_output message))
    in
    validate_all ladder
