type params = {
  heap_max : int;
  heap_min : int;
  max_pairs_per_group : int;
}

let default_params = { heap_max = 10_000; heap_min = 100; max_pairs_per_group = 200_000 }

type candidate = {
  u : int;
  v : int;
  ver_u : int;
  ver_v : int;
}

let push_candidate cl heap ~heap_max u v =
  match Cluster.delta cl u v with
  | None -> ()
  | Some { errd; sized } ->
    let ratio = errd /. float_of_int sized in
    Dheap.push heap ratio
      { u; v; ver_u = Cluster.version cl u; ver_v = Cluster.version cl v };
    if Dheap.length heap > heap_max then ignore (Dheap.pop_max heap)

(* CREATEPOOL (Figure 6): candidate same-label pairs at increasing
   depth, until all depths are done or the pool is full after a
   complete depth. *)
let create_pool params cl =
  let heap : candidate Dheap.t = Dheap.create () in
  (* group representatives by label *)
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = Xmldoc.Label.to_int (Cluster.label cl r) in
      match Hashtbl.find_opt groups key with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add groups key (ref [ r ]))
    (Cluster.alive_ids cl);
  let max_height =
    List.fold_left (fun acc r -> max acc (Cluster.height cl r)) 0 (Cluster.alive_ids cl)
  in
  (* thin a list deterministically to at most [limit] elements *)
  let thin limit l =
    let n = List.length l in
    if n <= limit then l
    else begin
      let stride = (n + limit - 1) / limit in
      List.filteri (fun i _ -> i mod stride = 0) l
    end
  in
  let level = ref 0 in
  let continue_ = ref true in
  while !continue_ && !level <= max_height do
    Hashtbl.iter
      (fun _ group ->
        let eq = List.filter (fun r -> Cluster.height cl r = !level) !group in
        let lower = List.filter (fun r -> Cluster.height cl r < !level) !group in
        (* pair budget per (label, depth) group *)
        let n_eq = List.length eq and n_lo = List.length lower in
        let pairs = (n_eq * (n_eq - 1) / 2) + (n_eq * n_lo) in
        let eq, lower =
          if pairs > params.max_pairs_per_group then begin
            let limit =
              max 2 (int_of_float (sqrt (float_of_int params.max_pairs_per_group)))
            in
            (thin limit eq, thin limit lower)
          end
          else (eq, lower)
        in
        let rec eq_pairs = function
          | [] -> ()
          | u :: rest ->
            List.iter (fun v -> push_candidate cl heap ~heap_max:params.heap_max u v) rest;
            List.iter
              (fun v -> push_candidate cl heap ~heap_max:params.heap_max u v)
              lower;
            eq_pairs rest
        in
        eq_pairs eq)
      groups;
    if Dheap.length heap >= params.heap_max then continue_ := false;
    incr level
  done;
  heap

(* TSBUILD (Figure 5) with a callback invoked after every applied
   merge, used to snapshot checkpoints, and a deadline from [limits].
   Returns [false] iff the deadline expired before the budget (or the
   label-split floor) was reached — the clustering is then left at the
   best state reached so far, which is always a valid synopsis. *)
let compress_gen params cl ~budget ~limits ~on_merge =
  let expired = ref (Xmldoc.Limits.expired limits) in
  let exhausted = ref false in
  while Cluster.size_bytes cl > budget && (not !exhausted) && not !expired do
    let heap = create_pool params cl in
    if Dheap.is_empty heap then exhausted := true
    else begin
      (* When the whole pool fits under Lh, regenerating it would yield
         the same candidates: drain it completely instead. *)
      let low_mark = if Dheap.length heap <= params.heap_min then 0 else params.heap_min in
      let progressed = ref false in
      let continue_ = ref true in
      while
        !continue_
        && Cluster.size_bytes cl > budget
        && Dheap.length heap > low_mark
        && not (expired := Xmldoc.Limits.expired limits; !expired)
      do
        match Dheap.pop_min heap with
        | None -> continue_ := false
        | Some (_, cand) ->
          let u = Cluster.find cl cand.u and v = Cluster.find cl cand.v in
          if u <> v then begin
            if
              u = cand.u && v = cand.v
              && Cluster.version cl u = cand.ver_u
              && Cluster.version cl v = cand.ver_v
            then begin
              ignore (Cluster.merge cl u v);
              progressed := true;
              on_merge ()
            end
            else
              (* stale: re-evaluate against the current clustering *)
              push_candidate cl heap ~heap_max:params.heap_max u v
          end
      done;
      (* A pool that produced no merge at all cannot make progress by
         regeneration either. *)
      if (not !progressed) && (not !expired) && Dheap.length heap <= low_mark then
        exhausted := true
    end
  done;
  not (!expired && Cluster.size_bytes cl > budget)

let compress ?(params = default_params) cl ~budget =
  ignore
    (compress_gen params cl ~budget ~limits:Xmldoc.Limits.unlimited
       ~on_merge:(fun () -> ()))

let build ?params stable ~budget =
  let cl = Cluster.of_stable stable in
  compress ?params cl ~budget;
  Cluster.to_synopsis cl

type outcome = {
  synopsis : Synopsis.t;
  degraded : bool;
}

let build_res ?(params = default_params) ?(limits = Xmldoc.Limits.unlimited) stable
    ~budget =
  match Synopsis.validate stable with
  | Error message ->
    Error (Xmldoc.Fault.Corrupt_synopsis { line = 0; content = ""; message })
  | Ok () ->
    let cl = Cluster.of_stable stable in
    let completed =
      compress_gen params cl ~budget ~limits ~on_merge:(fun () -> ())
    in
    let synopsis = Cluster.to_synopsis cl in
    (match Synopsis.validate synopsis with
    | Error message ->
      (* TSBUILD broke its own invariants — an internal bug, but still
         reported as a structured error rather than an exception. *)
      Error
        (Xmldoc.Fault.Corrupt_synopsis
           {
             line = 0;
             content = "";
             message = Printf.sprintf "TSBUILD produced an invalid synopsis: %s" message;
           })
    | Ok () -> Ok { synopsis; degraded = not completed })

let build_of_tree ?params tree ~budget = build ?params (Stable.build tree) ~budget

let build_with_checkpoints ?(params = default_params) stable ~budgets =
  let sorted = List.sort_uniq (fun a b -> Stdlib.compare b a) budgets in
  let cl = Cluster.of_stable stable in
  let results = Hashtbl.create 8 in
  let remaining = ref sorted in
  let snapshot_reached () =
    let rec loop () =
      match !remaining with
      | b :: rest when Cluster.size_bytes cl <= b ->
        Hashtbl.replace results b (Cluster.to_synopsis cl);
        remaining := rest;
        loop ()
      | _ -> ()
    in
    loop ()
  in
  snapshot_reached ();
  (match !remaining with
  | [] -> ()
  | _ ->
    let final = List.fold_left min max_int sorted in
    ignore
      (compress_gen params cl ~budget:final ~limits:Xmldoc.Limits.unlimited
         ~on_merge:snapshot_reached));
  (* Budgets below the label-split floor get the smallest synopsis. *)
  let floor = Cluster.to_synopsis cl in
  List.map
    (fun b ->
      match Hashtbl.find_opt results b with
      | Some s -> (b, s)
      | None -> (b, floor))
    budgets
