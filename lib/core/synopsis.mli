(** Graph synopses — the shared representation of count-stable
    summaries, TREESKETCH synopses, and query-result synopses (§3).

    A synopsis is a node- and edge-labeled graph: each node [u]
    summarizes a set of identically-labeled document elements (its
    {e extent}) and carries [count u] = |extent(u)|; each edge [(u,v)]
    carries the {e average} number of children in [extent v] per
    element of [extent u] (Definition 3.2).  In a count-stable synopsis
    every edge average is an exact integer (Definition 3.1). *)

type node = {
  label : Xmldoc.Label.t;
  count : float;
      (** extent cardinality.  A float: result synopses produced by
          [EVAL_QUERY] carry fractional derived counts. *)
  edges : (int * float) array;
      (** outgoing edges [(target, avg_child_count)], sorted by target
          id, averages strictly positive *)
}

type t = {
  nodes : node array;
  root : int;  (** the node summarizing the document root; count 1 *)
}

val node_bytes : int
(** Storage cost charged per synopsis node (label + count). *)

val edge_bytes : int
(** Storage cost charged per synopsis edge (target + average). *)

val size_bytes : t -> int
(** The storage footprint used against construction space budgets and
    reported on the x-axis of Figures 11–13. *)

val num_nodes : t -> int

val num_edges : t -> int

val label : t -> int -> Xmldoc.Label.t

val count : t -> int -> float

val edges : t -> int -> (int * float) array

val edge_count : t -> int -> int -> float
(** [edge_count s u v] is the average on edge [(u,v)], or [0.] if
    absent. *)

val parents : t -> int array array
(** Reverse adjacency: [ (parents s).(v) ] lists the sources of edges
    into [v]. *)

val total_elements : t -> float
(** Sum of node counts = number of summarized document elements. *)

val is_count_stable : t -> bool
(** True iff every edge average is integral — necessary (and, for
    synopses produced by {!Stable.build}, sufficient) for zero-error
    expansion. *)

val heights : t -> int array
(** Per-node height: leaves are 0, otherwise 1 + max over children.
    Nodes on cycles get the height of the longest acyclic path through
    them, computed with a visited guard. *)

val canonicalize : t -> t
(** Coarsest count-stable quotient of the synopsis: nodes with the same
    label and identical per-element edge counts into the same target
    blocks are merged (extents add), computed by partition refinement.
    For a count-stable summary of a tree this is the identity (it is
    already minimal, Lemma 3.1); for the result synopses of
    [EVAL_QUERY] it collapses bindings of the same variable whose
    result sub-structure is indistinguishable — e.g. the hundreds of
    document classes a leaf variable binds — which is required for a
    fair ESD comparison against the (canonical) stable summary of the
    true nesting tree. *)

val validate : t -> (unit, string) result
(** Invariant check run on every untrusted or freshly-constructed
    synopsis (after [Serialize] loads and after [TSBUILD] merges):
    the root id is in range, every edge target is in range, edge lists
    are strictly sorted by target (no duplicates), and all counts and
    edge averages are finite with [count >= 0] and averages [> 0].
    Returns the first violation as a human-readable message. *)

val make : root:int -> node array -> t
(** Build a synopsis, normalizing edge order.  Raises [Invalid_argument]
    if the root id is out of range or an edge target is invalid. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)
