(** CRC-32 (IEEE, as in zlib) — the integrity checksum of the
    version-2 synopsis snapshot format ({!Serialize}). *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] with [s.[pos..pos+len-1]]. *)

val to_hex : int32 -> string
(** Lower-case, zero-padded, 8 characters. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
