let render ~version ?(meta = []) (s : Synopsis.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "treesketch %d\n" version);
  List.iter
    (fun (key, value) ->
      if String.contains key ' ' || String.contains value '\n' then
        invalid_arg "Serialize: metadata keys/values must be line-safe";
      Buffer.add_string buf (Printf.sprintf "meta %s %s\n" key value))
    meta;
  Buffer.add_string buf (Printf.sprintf "root %d\n" s.root);
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %.17g %s\n" i n.Synopsis.count
           (Xmldoc.Label.to_string n.Synopsis.label)))
    s.nodes;
  Array.iteri
    (fun i n ->
      Array.iter
        (fun (t, k) -> Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" i t k))
        n.Synopsis.edges)
    s.nodes;
  Buffer.contents buf

let to_string s = render ~version:1 s

let with_crc body = body ^ "crc " ^ Crc32.to_hex (Crc32.string body) ^ "\n"

let to_snapshot_string s = with_crc (render ~version:2 s)

(* Version 3 = version 2 plus [meta] records between the header and the
   root — the carrier of build-checkpoint metadata (source fingerprint,
   target budget, params hash, merges applied). *)
let to_checkpoint_string ~meta s = with_crc (render ~version:3 ~meta s)

(* Structured parse failure carrier, converted to [Fault.t] at the
   entry-point boundary. *)
exception Corrupt of { line : int; content : string; message : string }

let corrupt ~line ~content fmt =
  Printf.ksprintf (fun message -> raise (Corrupt { line; content; message })) fmt

let of_string_exn (limits : Xmldoc.Limits.t) text =
  let start = Xmldoc.Limits.now () in
  let lines = String.split_on_char '\n' text in
  let root = ref (-1) in
  let version = ref 0 in
  let root_seen = ref false in
  (* Some (declared checksum, byte offset of the crc line): set once
     the trailer is seen, after which only blank lines may follow. *)
  let crc_at = ref None in
  let meta = ref [] in
  let nodes : (int, Xmldoc.Label.t * float) Hashtbl.t = Hashtbl.create 256 in
  let edges : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 256 in
  let parse_line lineno offset line =
    let fail fmt = corrupt ~line:lineno ~content:line fmt in
    let int_field what s =
      match int_of_string_opt s with
      | Some v -> v
      | None -> fail "%s %S is not an integer" what s
    in
    let float_field what s =
      match float_of_string_opt s with
      | Some v -> v
      | None -> fail "%s %S is not a number" what s
    in
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] | [] -> ()
    | _ when !crc_at <> None ->
      (* A snapshot ends at its crc trailer; any record after it is a
         torn or concatenated write. *)
      fail "trailing garbage after the crc trailer"
    | [ "treesketch"; ("1" | "2" | "3") ] when !version <> 0 ->
      fail "duplicate header (concatenated snapshots?)"
    | [ "treesketch"; "1" ] -> version := 1
    | [ "treesketch"; "2" ] -> version := 2
    | [ "treesketch"; "3" ] -> version := 3
    | "treesketch" :: v -> fail "unsupported format version %S" (String.concat " " v)
    | "meta" :: key :: value_words ->
      if !version <> 3 then fail "meta record outside a version-3 checkpoint";
      if List.mem_assoc key !meta then fail "duplicate meta key %S" key;
      meta := (key, String.concat " " value_words) :: !meta
    | [ "meta" ] -> fail "meta record without a key"
    | [ "root"; id ] ->
      if !root_seen then fail "duplicate root record";
      root_seen := true;
      root := int_field "root id" id
    | [ "crc"; hex ] ->
      if !version < 2 then fail "crc trailer outside a snapshot (version >= 2)";
      (match Crc32.of_hex hex with
      | None -> fail "checksum %S is not 8 hex digits" hex
      | Some declared -> crc_at := Some (declared, offset))
    | "node" :: id :: count :: label_words ->
      let id = int_field "node id" id in
      if id < 0 then fail "negative node id %d" id;
      if Hashtbl.mem nodes id then fail "duplicate node id %d" id;
      if Hashtbl.length nodes >= limits.max_elements then
        raise
          (Xmldoc.Fault.Fault
             (Limit_exceeded
                {
                  what = "nodes";
                  actual = Hashtbl.length nodes + 1;
                  limit = limits.max_elements;
                }));
      let label = String.concat " " label_words in
      if label = "" then fail "node %d: empty label" id;
      Hashtbl.add nodes id (Xmldoc.Label.of_string label, float_field "node count" count)
    | [ "edge"; from; into; avg ] ->
      let from = int_field "edge source" from in
      let entry = (int_field "edge target" into, float_field "edge average" avg) in
      (match Hashtbl.find_opt edges from with
      | Some l -> l := entry :: !l
      | None -> Hashtbl.add edges from (ref [ entry ]))
    | word :: _ -> fail "unknown record %S" word
  in
  let offset = ref 0 in
  List.iteri
    (fun i line ->
      if i land 4095 = 0 && Xmldoc.Limits.expired limits then
        raise
          (Xmldoc.Fault.Fault
             (Deadline
                {
                  stage = "synopsis load";
                  elapsed = Xmldoc.Limits.now () -. start;
                }));
      parse_line (i + 1) !offset line;
      offset := !offset + String.length line + 1)
    lines;
  let whole fmt = corrupt ~line:0 ~content:"" fmt in
  (* Version-2/3 snapshots carry a mandatory checksum trailer; a missing
     trailer is the signature of a write cut short, a mismatch that of
     in-place corruption.  Either way: reject, never a partial load. *)
  if !version >= 2 then begin
    match !crc_at with
    | None -> whole "missing crc trailer (snapshot truncated mid-write?)"
    | Some (declared, at) ->
      let actual = Crc32.update 0l text 0 at in
      if not (Int32.equal declared actual) then
        whole "checksum mismatch: trailer says %s, content hashes to %s"
          (Crc32.to_hex declared) (Crc32.to_hex actual)
  end;
  let n = Hashtbl.length nodes in
  if n = 0 then whole "no node records";
  if !root < 0 || !root >= n then whole "missing or bad root %d (have %d nodes)" !root n;
  let node_arr =
    Array.init n (fun i ->
        match Hashtbl.find_opt nodes i with
        | None -> whole "missing node %d (ids must be dense 0..%d)" i (n - 1)
        | Some (label, count) ->
          let edges =
            match Hashtbl.find_opt edges i with
            | Some l -> Array.of_list !l
            | None -> [||]
          in
          { Synopsis.label; count; edges })
  in
  Hashtbl.iter
    (fun from _ ->
      if from < 0 || from >= n then whole "edge source %d out of range [0,%d)" from n)
    edges;
  let s =
    try Synopsis.make ~root:!root node_arr
    with Invalid_argument msg -> whole "%s" msg
  in
  (match Synopsis.validate s with
  | Ok () -> ()
  | Error msg -> whole "%s" msg);
  (s, List.rev !meta)

let of_string_meta_res ?(limits = Xmldoc.Limits.default) text =
  if String.length text > limits.max_bytes then
    Error
      (Xmldoc.Fault.Limit_exceeded
         { what = "bytes"; actual = String.length text; limit = limits.max_bytes })
  else
    match of_string_exn limits text with
    | s_meta -> Ok s_meta
    | exception Corrupt { line; content; message } ->
      Error (Xmldoc.Fault.Corrupt_synopsis { line; content; message })
    | exception Xmldoc.Fault.Fault f -> Error f

let of_string_res ?limits text =
  Result.map fst (of_string_meta_res ?limits text)

let of_string ?limits text =
  match of_string_res ?limits text with
  | Ok s -> s
  | Error f -> failwith (Xmldoc.Fault.to_string f)

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string s))

let write_atomic path text =
  match
    let dir = Filename.dirname path in
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path;
    let tmp = Filename.temp_file ~temp_dir:dir ".treesketch" ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Write ~path:tmp;
            (* An injected short write is a full disk caught mid-line:
               the prefix lands in the temp file, the error aborts the
               save before the rename, and the [finally] above removes
               the tear — readers never see it. *)
            let len = String.length text in
            let n = Xmldoc.Io_fault.cap Xmldoc.Io_fault.Write ~path:tmp len in
            output_substring oc text 0 n;
            flush oc;
            if n < len then raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp));
            (* Data must be durable before the rename publishes it:
               otherwise a crash could leave the *renamed* file empty,
               which is exactly the torn state the format exists to
               prevent. *)
            Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Fsync ~path:tmp;
            Unix.fsync (Unix.descr_of_out_channel oc);
            (* Closing a written file is the last syscall that can still
               lose the data (NFS, quota accounting): fail here and the
               [finally] above removes the temp before anything was
               published. *)
            Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Close ~path:tmp);
        (* [Filename.temp_file] creates 0600 files; publishing one as
           the snapshot would tighten its mode relative to [save],
           whose files get the usual umask-derived 0666.  Re-apply the
           umask-derived mode before the rename. *)
        let mask = Unix.umask 0 in
        ignore (Unix.umask mask : int);
        Unix.chmod tmp (0o666 land lnot mask);
        (* Atomic publish: readers see the old snapshot or the new one,
           never a prefix. *)
        Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Rename ~path;
        Sys.rename tmp path;
        (* Persist the directory entry too (best-effort: some systems
           refuse fsync on directories). *)
        match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
        | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ())
  with
  | () -> Ok ()
  | exception Sys_error message -> Error (Xmldoc.Fault.Io_error { path; message })
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Xmldoc.Fault.Io_error { path; message = fn ^ ": " ^ Unix.error_message e })

let save_atomic ?meta path s =
  let text =
    match meta with
    | None -> to_snapshot_string s
    | Some meta -> to_checkpoint_string ~meta s
  in
  write_atomic path text

(* ------------------------------------------------------------------ *)
(* Version 4: ladder snapshots                                          *)
(* ------------------------------------------------------------------ *)

(* A ladder snapshot holds several budget tiers of the same synopsis in
   one file: a checksummed manifest (header + one [tier] record per
   member + [crc] trailer) followed by the concatenated version-2
   snapshot payloads, each a complete snapshot with its own trailer and
   additionally pinned by the [crc=] declared in the manifest.  The
   framing parser never touches versions 1-3: those go through
   [of_string_exn] unchanged. *)

let ladder_header = "treesketch 4"

let is_ladder_text text =
  String.length text >= String.length ladder_header
  && String.sub text 0 (String.length ladder_header) = ladder_header
  && (String.length text = String.length ladder_header
     || text.[String.length ladder_header] = '\n')

let to_ladder_string tiers =
  (match tiers with
  | [] -> invalid_arg "Serialize.to_ladder_string: empty ladder"
  | _ -> ());
  let prev = ref max_int in
  List.iter
    (fun (budget, _) ->
      if budget <= 0 then
        invalid_arg "Serialize.to_ladder_string: tier budgets must be positive";
      if budget >= !prev then
        invalid_arg
          "Serialize.to_ladder_string: tier budgets must strictly decrease \
           (finest first)";
      prev := budget)
    tiers;
  let payloads = List.map (fun (_, s) -> to_snapshot_string s) tiers in
  let manifest = Buffer.create 256 in
  Buffer.add_string manifest (ladder_header ^ "\n");
  List.iteri
    (fun i ((budget, _), payload) ->
      Buffer.add_string manifest
        (Printf.sprintf "tier %d budget=%d bytes=%d crc=%s\n" i budget
           (String.length payload)
           (Crc32.to_hex (Crc32.string payload))))
    (List.combine tiers payloads);
  with_crc (Buffer.contents manifest) ^ String.concat "" payloads

let save_ladder_atomic path tiers = write_atomic path (to_ladder_string tiers)

(* Manifest grammar: [tier <i> budget=<b> bytes=<n> crc=<hex>] records
   with dense indexes, strictly decreasing budgets, then a [crc] line
   over the manifest prefix; payload bytes follow immediately after. *)
let of_ladder_string_exn (limits : Xmldoc.Limits.t) text =
  let len = String.length text in
  let pos = ref 0 in
  let lineno = ref 0 in
  let line_start = ref 0 in
  let next_line () =
    if !pos >= len then None
    else begin
      incr lineno;
      line_start := !pos;
      let nl =
        match String.index_from_opt text !pos '\n' with
        | Some nl -> nl
        | None -> len
      in
      let line = String.sub text !pos (nl - !pos) in
      pos := if nl = len then len else nl + 1;
      Some line
    end
  in
  (match next_line () with
  | Some l when l = ladder_header -> ()
  | Some l -> corrupt ~line:1 ~content:l "ladder header expected, got %S" l
  | None -> corrupt ~line:0 ~content:"" "empty ladder snapshot");
  (* (budget, bytes, crc) per tier, reverse order while scanning *)
  let tiers = ref [] in
  let ntiers = ref 0 in
  let rec manifest () =
    match next_line () with
    | None ->
      corrupt ~line:0 ~content:""
        "missing crc trailer in ladder manifest (snapshot truncated \
         mid-write?)"
    | Some line -> (
      let fail fmt = corrupt ~line:!lineno ~content:line fmt in
      let kv what prefix s =
        if
          String.length s > String.length prefix
          && String.sub s 0 (String.length prefix) = prefix
        then String.sub s (String.length prefix)
               (String.length s - String.length prefix)
        else fail "%s field expected, got %S" what s
      in
      let int_kv what prefix s =
        match int_of_string_opt (kv what prefix s) with
        | Some v -> v
        | None -> fail "%s %S is not an integer" what s
      in
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] | [] -> manifest ()
      | [ "crc"; hex ] -> (
        match Crc32.of_hex hex with
        | None -> fail "checksum %S is not 8 hex digits" hex
        | Some declared ->
          let actual = Crc32.update 0l text 0 !line_start in
          if not (Int32.equal declared actual) then
            fail "ladder manifest checksum mismatch: trailer says %s, \
                  content hashes to %s"
              (Crc32.to_hex declared) (Crc32.to_hex actual))
      | [ "tier"; idx; budget; bytes; crc ] ->
        let idx = match int_of_string_opt idx with
          | Some v -> v
          | None -> fail "tier index %S is not an integer" idx
        in
        if idx <> !ntiers then
          fail "tier index %d out of order (expected %d)" idx !ntiers;
        let budget = int_kv "tier budget" "budget=" budget in
        if budget <= 0 then fail "tier %d: non-positive budget %d" idx budget;
        (match !tiers with
        | (prev, _, _) :: _ when budget >= prev ->
          fail "tier %d: budget %d does not decrease (previous %d)" idx budget
            prev
        | _ -> ());
        let bytes = int_kv "tier bytes" "bytes=" bytes in
        if bytes <= 0 then fail "tier %d: non-positive length %d" idx bytes;
        let crc =
          match Crc32.of_hex (kv "tier crc" "crc=" crc) with
          | Some v -> v
          | None -> fail "tier %d: checksum is not 8 hex digits" idx
        in
        incr ntiers;
        tiers := (budget, bytes, crc) :: !tiers;
        manifest ()
      | word :: _ -> fail "unknown ladder manifest record %S" word)
  in
  manifest ();
  let whole fmt = corrupt ~line:0 ~content:"" fmt in
  let tiers = Array.of_list (List.rev !tiers) in
  if Array.length tiers = 0 then whole "ladder manifest declares no tiers";
  let declared_total =
    Array.fold_left (fun acc (_, bytes, _) -> acc + bytes) 0 tiers
  in
  if !pos + declared_total > len then
    whole "ladder payloads truncated: manifest declares %d bytes, %d present"
      declared_total (len - !pos);
  if !pos + declared_total < len then
    whole "trailing garbage after the ladder payloads";
  let off = ref !pos in
  Array.map
    (fun (budget, bytes, declared) ->
      let payload = String.sub text !off bytes in
      off := !off + bytes;
      let actual = Crc32.string payload in
      if not (Int32.equal declared actual) then
        whole "tier (budget %d) checksum mismatch: manifest says %s, payload \
               hashes to %s"
          budget (Crc32.to_hex declared) (Crc32.to_hex actual);
      let s, _meta = of_string_exn limits payload in
      (budget, s))
    tiers

let of_ladder_string_res ?(limits = Xmldoc.Limits.default) text =
  if String.length text > limits.max_bytes then
    Error
      (Xmldoc.Fault.Limit_exceeded
         { what = "bytes"; actual = String.length text; limit = limits.max_bytes })
  else
    match of_ladder_string_exn limits text with
    | tiers -> Ok tiers
    | exception Corrupt { line; content; message } ->
      Error (Xmldoc.Fault.Corrupt_synopsis { line; content; message })
    | exception Xmldoc.Fault.Fault f -> Error f

type loaded =
  | Single of Synopsis.t
  | Ladder of (int * Synopsis.t) array

let of_any_string_res ?limits text =
  if is_ladder_text text then
    Result.map (fun tiers -> Ladder tiers) (of_ladder_string_res ?limits text)
  else Result.map (fun s -> Single s) (of_string_res ?limits text)

let load_gen of_string ~limits path =
  match
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path;
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > limits.Xmldoc.Limits.max_bytes then
          Error
            (Xmldoc.Fault.Limit_exceeded
               { what = "bytes"; actual = len; limit = limits.max_bytes })
        else begin
          Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Read ~path;
          (* an injected short read observes a prefix of the snapshot:
             the checksum trailer must reject it as [Corrupt_synopsis],
             never load it partially *)
          of_string ~limits
            (really_input_string ic (Xmldoc.Io_fault.cap Xmldoc.Io_fault.Read ~path len))
        end)
  with
  | Ok s -> Ok s
  | Error f -> Error (Xmldoc.Fault.with_path path f)
  | exception Sys_error message -> Error (Xmldoc.Fault.Io_error { path; message })
  | exception End_of_file ->
    Error (Xmldoc.Fault.Io_error { path; message = "unexpected end of file" })
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Xmldoc.Fault.Io_error { path; message = fn ^ ": " ^ Unix.error_message e })

(* The raw bytes of a snapshot file, through the same fault taps and
   byte bound as [load_gen] — what the scrubber and the peer-repair
   FETCH path hash and stream.  A short (torn) read returns a prefix;
   the caller's checksum verification rejects it. *)
let load_raw_res ?(limits = Xmldoc.Limits.default) path =
  match
    Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Open ~path;
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > limits.Xmldoc.Limits.max_bytes then
          Error
            (Xmldoc.Fault.Limit_exceeded
               { what = "bytes"; actual = len; limit = limits.max_bytes })
        else begin
          Xmldoc.Io_fault.tap_retrying Xmldoc.Io_fault.Read ~path;
          Ok
            (really_input_string ic
               (Xmldoc.Io_fault.cap Xmldoc.Io_fault.Read ~path len))
        end)
  with
  | Ok s -> Ok s
  | Error f -> Error (Xmldoc.Fault.with_path path f)
  | exception Sys_error message -> Error (Xmldoc.Fault.Io_error { path; message })
  | exception End_of_file ->
    Error (Xmldoc.Fault.Io_error { path; message = "unexpected end of file" })
  | exception Unix.Unix_error (e, fn, _) ->
    Error
      (Xmldoc.Fault.Io_error { path; message = fn ^ ": " ^ Unix.error_message e })

let load_res ?(limits = Xmldoc.Limits.default) path =
  load_gen (fun ~limits text -> of_string_res ~limits text) ~limits path

let load_meta_res ?(limits = Xmldoc.Limits.default) path =
  load_gen (fun ~limits text -> of_string_meta_res ~limits text) ~limits path

let load_ladder_res ?(limits = Xmldoc.Limits.default) path =
  load_gen (fun ~limits text -> of_ladder_string_res ~limits text) ~limits path

let load_any_res ?(limits = Xmldoc.Limits.default) path =
  load_gen (fun ~limits text -> of_any_string_res ~limits text) ~limits path

let load ?limits path =
  match load_res ?limits path with
  | Ok s -> s
  | Error (Xmldoc.Fault.Io_error { message; _ }) -> raise (Sys_error message)
  | Error f -> failwith (Xmldoc.Fault.to_string f)
