let to_string (s : Synopsis.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "treesketch 1\n";
  Buffer.add_string buf (Printf.sprintf "root %d\n" s.root);
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %.17g %s\n" i n.Synopsis.count
           (Xmldoc.Label.to_string n.Synopsis.label)))
    s.nodes;
  Array.iteri
    (fun i n ->
      Array.iter
        (fun (t, k) -> Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" i t k))
        n.Synopsis.edges)
    s.nodes;
  Buffer.contents buf

(* Structured parse failure carrier, converted to [Fault.t] at the
   entry-point boundary. *)
exception Corrupt of { line : int; content : string; message : string }

let corrupt ~line ~content fmt =
  Printf.ksprintf (fun message -> raise (Corrupt { line; content; message })) fmt

let of_string_exn (limits : Xmldoc.Limits.t) text =
  let start = Xmldoc.Limits.now () in
  let lines = String.split_on_char '\n' text in
  let root = ref (-1) in
  let nodes : (int, Xmldoc.Label.t * float) Hashtbl.t = Hashtbl.create 256 in
  let edges : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 256 in
  let parse_line lineno line =
    let fail fmt = corrupt ~line:lineno ~content:line fmt in
    let int_field what s =
      match int_of_string_opt s with
      | Some v -> v
      | None -> fail "%s %S is not an integer" what s
    in
    let float_field what s =
      match float_of_string_opt s with
      | Some v -> v
      | None -> fail "%s %S is not a number" what s
    in
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] | [] -> ()
    | [ "treesketch"; "1" ] -> ()
    | "treesketch" :: v -> fail "unsupported format version %S" (String.concat " " v)
    | [ "root"; id ] -> root := int_field "root id" id
    | "node" :: id :: count :: label_words ->
      let id = int_field "node id" id in
      if id < 0 then fail "negative node id %d" id;
      if Hashtbl.mem nodes id then fail "duplicate node id %d" id;
      if Hashtbl.length nodes >= limits.max_elements then
        raise
          (Xmldoc.Fault.Fault
             (Limit_exceeded
                {
                  what = "nodes";
                  actual = Hashtbl.length nodes + 1;
                  limit = limits.max_elements;
                }));
      let label = String.concat " " label_words in
      if label = "" then fail "node %d: empty label" id;
      Hashtbl.add nodes id (Xmldoc.Label.of_string label, float_field "node count" count)
    | [ "edge"; from; into; avg ] ->
      let from = int_field "edge source" from in
      let entry = (int_field "edge target" into, float_field "edge average" avg) in
      (match Hashtbl.find_opt edges from with
      | Some l -> l := entry :: !l
      | None -> Hashtbl.add edges from (ref [ entry ]))
    | word :: _ -> fail "unknown record %S" word
  in
  List.iteri
    (fun i line ->
      if i land 4095 = 0 && Xmldoc.Limits.expired limits then
        raise
          (Xmldoc.Fault.Fault
             (Deadline
                {
                  stage = "synopsis load";
                  elapsed = Xmldoc.Limits.now () -. start;
                }));
      parse_line (i + 1) line)
    lines;
  let n = Hashtbl.length nodes in
  let whole fmt = corrupt ~line:0 ~content:"" fmt in
  if n = 0 then whole "no node records";
  if !root < 0 || !root >= n then whole "missing or bad root %d (have %d nodes)" !root n;
  let node_arr =
    Array.init n (fun i ->
        match Hashtbl.find_opt nodes i with
        | None -> whole "missing node %d (ids must be dense 0..%d)" i (n - 1)
        | Some (label, count) ->
          let edges =
            match Hashtbl.find_opt edges i with
            | Some l -> Array.of_list !l
            | None -> [||]
          in
          { Synopsis.label; count; edges })
  in
  Hashtbl.iter
    (fun from _ ->
      if from < 0 || from >= n then whole "edge source %d out of range [0,%d)" from n)
    edges;
  let s =
    try Synopsis.make ~root:!root node_arr
    with Invalid_argument msg -> whole "%s" msg
  in
  (match Synopsis.validate s with
  | Ok () -> ()
  | Error msg -> whole "%s" msg);
  s

let of_string_res ?(limits = Xmldoc.Limits.default) text =
  if String.length text > limits.max_bytes then
    Error
      (Xmldoc.Fault.Limit_exceeded
         { what = "bytes"; actual = String.length text; limit = limits.max_bytes })
  else
    match of_string_exn limits text with
    | s -> Ok s
    | exception Corrupt { line; content; message } ->
      Error (Xmldoc.Fault.Corrupt_synopsis { line; content; message })
    | exception Xmldoc.Fault.Fault f -> Error f

let of_string ?limits text =
  match of_string_res ?limits text with
  | Ok s -> s
  | Error f -> failwith (Xmldoc.Fault.to_string f)

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string s))

let load_res ?(limits = Xmldoc.Limits.default) path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > limits.max_bytes then
          Error
            (Xmldoc.Fault.Limit_exceeded
               { what = "bytes"; actual = len; limit = limits.max_bytes })
        else of_string_res ~limits (really_input_string ic len))
  with
  | r -> r
  | exception Sys_error message -> Error (Xmldoc.Fault.Io_error { path; message })
  | exception End_of_file ->
    Error (Xmldoc.Fault.Io_error { path; message = "unexpected end of file" })

let load ?limits path =
  match load_res ?limits path with
  | Ok s -> s
  | Error (Xmldoc.Fault.Io_error { message; _ }) -> raise (Sys_error message)
  | Error f -> failwith (Xmldoc.Fault.to_string f)
