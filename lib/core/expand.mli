(** [Expand] (Lemma 3.1): reconstructing a document from a synopsis.

    For a count-stable synopsis the reconstruction is exact: every
    element of a class has identical sub-tree structure, so the result
    is isomorphic to the original document (sibling order is not
    preserved — it is not represented in a synopsis).

    For a compressed TREESKETCH the edge averages are fractional; the
    expansion then distributes child totals over element copies with a
    largest-remainder rule, preserving aggregate counts. *)

val exact : Synopsis.t -> Xmldoc.Tree.t
(** Expansion of a count-stable synopsis.  Sub-trees are shared
    structurally, so this is cheap even for large documents.
    @raise Invalid_argument if an edge average is not integral or the
    synopsis is cyclic. *)

val approximate : ?max_nodes:int -> Synopsis.t -> Xmldoc.Tree.t
(** Expansion of an arbitrary synopsis.  Fractional child counts are
    rounded per parent-extent with a largest-remainder distribution
    ([round (n *. k)] children spread as evenly as possible over the
    [n] copies).  Cycles are cut when the accumulated expected count of
    a node copy drops below one half.  [max_nodes] (default
    [1_000_000]) aborts runaway expansions.
    @raise Invalid_argument if the expansion exceeds [max_nodes]. *)

type partial = {
  tree : Xmldoc.Tree.t;
  truncated : bool;
      (** some copies were not built: a cap tripped or a cycle was
          cut *)
  nodes : int;  (** tree nodes actually built *)
}

val partial :
  ?max_nodes:int -> ?budget:Xmldoc.Budget.t -> Synopsis.t -> partial
(** Total variant of {!approximate} for the serving layer: instead of
    raising when the expansion exceeds [max_nodes] (or when the request
    [budget]'s deadline/node cap stops it), the already-built prefix of
    the tree is returned with [truncated = true].  Aggregate child
    counts of the returned prefix match the synopsis; missing subtrees
    are simply absent.  The root is always materialized. *)
