(** [TSBUILD] and [CREATEPOOL] (§4.2, Figures 5 and 6): compressing the
    count-stable summary down to a space budget by greedy bottom-up
    merging.

    The candidate pool is a double-ended heap ordered by the
    marginal-gain ratio [errd /. sized]; [CREATEPOOL] populates it with
    same-label pairs examined at increasing node depth (height), keeping
    only the best [heap_max] candidates.  Merges are applied best-first;
    entries whose endpoints were merged away or whose neighborhoods
    changed (the [affected(h,m)] set) are detected by cluster versions
    and re-evaluated on pop. *)

type params = {
  heap_max : int;  (** [Uh]: candidate-pool capacity (paper: 10000) *)
  heap_min : int;  (** [Lh]: regenerate the pool below this (paper: 100) *)
  max_pairs_per_group : int;
      (** safety valve: cap on candidate pairs enumerated per
          (label, depth) group; beyond it pairs are sampled with a
          deterministic stride.  [max_int] reproduces the paper
          exactly. *)
}

val default_params : params

val compress : ?params:params -> Cluster.t -> budget:int -> unit
(** Merge until [Cluster.size_bytes] fits [budget] (bytes) or no merge
    is possible (the label-split graph has been reached). *)

val build : ?params:params -> Synopsis.t -> budget:int -> Synopsis.t
(** [build stable ~budget] is the TREESKETCH of the given count-stable
    summary fitting in [budget] bytes. *)

type outcome = {
  synopsis : Synopsis.t;
  degraded : bool;
      (** [true] when the deadline expired before the budget was
          reached: [synopsis] is the best-so-far (valid, but possibly
          over budget) state of the compression *)
}

val build_res :
  ?params:params ->
  ?limits:Xmldoc.Limits.t ->
  Synopsis.t ->
  budget:int ->
  (outcome, Xmldoc.Fault.t) result
(** Guarded [build]: the input is checked with {!Synopsis.validate}
    (rejections are [Error (Corrupt_synopsis _)]) and the [limits]
    deadline is polled after every candidate merge.  On expiry the
    construction degrades gracefully — the best-so-far clustering is
    returned with [degraded = true] instead of failing — so callers
    always get a synopsis that passes {!Synopsis.validate}.  [limits]
    defaults to {!Xmldoc.Limits.unlimited}. *)

val build_of_tree : ?params:params -> Xmldoc.Tree.t -> budget:int -> Synopsis.t
(** Convenience: [BUILD_STABLE] then [build]. *)

val build_with_checkpoints :
  ?params:params -> Synopsis.t -> budgets:int list -> (int * Synopsis.t) list
(** One construction run snapshotting the synopsis at every budget
    (descending), so a budget sweep costs a single compression pass.
    Returns [(budget, synopsis)] pairs in the order given. *)
