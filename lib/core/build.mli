(** [TSBUILD] and [CREATEPOOL] (§4.2, Figures 5 and 6): compressing the
    count-stable summary down to a space budget by greedy bottom-up
    merging.

    The candidate pool is a double-ended heap ordered by the
    marginal-gain ratio [errd /. sized]; [CREATEPOOL] populates it with
    same-label pairs examined at increasing node depth (height), keeping
    only the best [heap_max] candidates.  Merges are applied best-first;
    entries whose endpoints were merged away or whose neighborhoods
    changed (the [affected(h,m)] set) are detected by cluster versions
    and re-evaluated on pop. *)

type params = {
  heap_max : int;  (** [Uh]: candidate-pool capacity (paper: 10000) *)
  heap_min : int;  (** [Lh]: regenerate the pool below this (paper: 100) *)
  max_pairs_per_group : int;
      (** safety valve: cap on candidate pairs enumerated per
          (label, depth) group; beyond it pairs are sampled with a
          deterministic stride.  [max_int] reproduces the paper
          exactly. *)
}

val default_params : params

val compress : ?params:params -> Cluster.t -> budget:int -> unit
(** Merge until [Cluster.size_bytes] fits [budget] (bytes) or no merge
    is possible (the label-split graph has been reached). *)

val poll_period : params -> int
(** How many candidate pops the merge loop lets pass between
    consultations of its control budget (clock + GC counters).  Derived
    from [heap_max] so that the number of merges applied after a limit
    trips — the degradation latency — is always strictly smaller than
    one candidate-pool regeneration. *)

val compress_ctl :
  ?params:params ->
  Cluster.t ->
  budget:int ->
  ctl:Xmldoc.Budget.t ->
  on_merge:(unit -> unit) ->
  bool
(** The raw TSBUILD loop: merge toward [budget] under the control
    budget [ctl] (deadline + heap-pressure ceiling, polled every
    {!poll_period} pops), invoking [on_merge] after every applied
    merge.  Returns [false] iff [ctl] stopped the loop while still over
    [budget]; the clustering is then left at the best state reached.
    Exposed for tests and custom drivers — most callers want
    {!build_res} or {!build_checkpointed_res}. *)

val build : ?params:params -> Synopsis.t -> budget:int -> Synopsis.t
(** [build stable ~budget] is the TREESKETCH of the given count-stable
    summary fitting in [budget] bytes. *)

type outcome = {
  synopsis : Synopsis.t;
  degraded : bool;
      (** [true] when the deadline expired before the budget was
          reached: [synopsis] is the best-so-far (valid, but possibly
          over budget) state of the compression *)
}

val build_res :
  ?params:params ->
  ?limits:Xmldoc.Limits.t ->
  ?max_heap_words:int ->
  Synopsis.t ->
  budget:int ->
  (outcome, Xmldoc.Fault.t) result
(** Guarded [build]: the input is checked with {!Synopsis.validate}
    (rejections are [Error (Corrupt_synopsis _)]) and the [limits]
    deadline plus the [max_heap_words] GC ceiling are polled every
    {!poll_period} candidate pops.  When either trips the construction
    degrades gracefully — the best-so-far clustering is returned with
    [degraded = true] instead of failing (or OOMing) — so callers
    always get a synopsis that passes {!Synopsis.validate}.  [limits]
    defaults to {!Xmldoc.Limits.unlimited}. *)

val build_of_tree : ?params:params -> Xmldoc.Tree.t -> budget:int -> Synopsis.t
(** Convenience: [BUILD_STABLE] then [build]. *)

val merge_disjoint : Synopsis.t list -> (Synopsis.t, string) result
(** Exact disjoint union of synopses summarizing fragments under one
    shared document root: a fresh root (count 1, the common root label)
    adopts every input root's out-edges; all other nodes are copied
    with offset ids.  The pre-compression step of delta compaction —
    follow with {!build_res} to squeeze the union back under budget.
    Errors on an empty list, mismatched root labels, or (impossible for
    tree summaries) an in-edge on a root. *)

val prune_paths : Synopsis.t -> Xmldoc.Label.t list list -> Synopsis.t
(** [prune_paths s paths] subtracts the subtrees matched by each label
    path (walked from the root: step [i] follows edges to targets
    labeled [li]) — the edges into the final frontier are cut, nodes
    left unreachable are dropped with ids remapped, and a cut target
    still reachable through other paths keeps its node with the cut
    parents' contribution removed from its count (clamped at 0).  Exact
    on the tree-shaped summaries delta levels are built from;
    approximate on compressed synopses.  Non-matching and empty paths
    are no-ops; the result always passes {!Synopsis.validate}. *)

val merge_tombstoned :
  (Synopsis.t * Xmldoc.Label.t list list) list -> (Synopsis.t, string) result
(** Tombstone-cancelling {!merge_disjoint}: fold levels oldest-first,
    applying each level's tombstone paths to the accumulated strictly
    older union ({!prune_paths}) before its own content joins.  A
    full-stack merge therefore emits a level owing no tombstones —
    deletion becomes physical reclamation at compaction. *)

(** The crash-safety journal of TSBUILD: a version-3 {!Serialize}
    record holding the in-progress clustering (as a synopsis — the live
    clusters at checkpoint time) plus the build metadata needed to
    validate and continue it. *)
module Checkpoint : sig
  type meta = {
    source : string;
        (** CRC-32 fingerprint of the stable summary the build started
            from ({!fingerprint}); carried unchanged across resumes *)
    budget : int;  (** target byte budget of the interrupted build *)
    params_hash : string;  (** {!hash_params} of the build's [params] *)
    merges : int;  (** merges applied so far (cumulative across resumes) *)
  }

  type t = {
    synopsis : Synopsis.t;  (** the in-progress clustering *)
    meta : meta;
  }

  val fingerprint : Synopsis.t -> string
  (** CRC-32 (hex) of the canonical rendering — the source-tree
      fingerprint stored in [meta.source]. *)

  val hash_params : params -> string

  val save : string -> t -> (unit, Xmldoc.Fault.t) result
  (** Atomic checksummed write ({!Serialize.save_atomic} with the meta
      records): a crash at any byte leaves the previous complete
      checkpoint in place. *)

  val load_res : ?limits:Xmldoc.Limits.t -> string -> (t, Xmldoc.Fault.t) result
  (** Load and validate a checkpoint: the synopsis passes
      {!Synopsis.validate}, the CRC trailer matches, and all meta keys
      are present and well-formed — anything less is
      [Error (Corrupt_synopsis _)], never a partial state. *)
end

val default_checkpoint_every : int

val build_checkpointed_res :
  ?params:params ->
  ?limits:Xmldoc.Limits.t ->
  ?max_heap_words:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(int -> unit) ->
  checkpoint:string ->
  Synopsis.t ->
  budget:int ->
  (outcome, Xmldoc.Fault.t) result
(** {!build_res} journaling its progress: every [checkpoint_every]
    merges (default {!default_checkpoint_every}), and once more when a
    limit degrades the build, the clustering is checkpointed to
    [checkpoint] with {!Checkpoint.save}.  [on_checkpoint] is invoked
    with the cumulative merge count after every successful checkpoint
    write (tests use it to archive kill-points).  Checkpoint I/O
    failures are deliberately swallowed — an unwritable journal never
    kills the build it protects.  @raise Invalid_argument if
    [checkpoint_every < 1]. *)

val resume_res :
  ?params:params ->
  ?limits:Xmldoc.Limits.t ->
  ?max_heap_words:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(int -> unit) ->
  string ->
  (outcome, Xmldoc.Fault.t) result
(** [resume_res path] validates the checkpoint at [path]
    ({!Checkpoint.load_res}, plus a params-hash match against [params])
    and continues compression from the checkpointed clustering toward
    the checkpoint's own budget, journaling onward into the same file.
    The result meets the same guarantees as an uninterrupted
    {!build_res}: a valid synopsis, within budget unless degraded or at
    the label-split floor.  A corrupt or truncated checkpoint is
    [Error (Corrupt_synopsis _)] — never a partial clustering. *)

val build_with_checkpoints :
  ?params:params -> Synopsis.t -> budgets:int list -> (int * Synopsis.t) list
(** One construction run snapshotting the synopsis at every budget
    (descending), so a budget sweep costs a single compression pass.
    Returns [(budget, synopsis)] pairs in the order given. *)

val ladder_milestones : budget:int -> tiers:int -> int list
(** The budget milestones of a [tiers]-rung degradation ladder:
    [budget], [budget/2], [budget/4], ... — strictly decreasing,
    cut short if halving bottoms out before [tiers] rungs.
    @raise Invalid_argument if [tiers < 1] or [budget < 1]. *)

type ladder_outcome = {
  ladder : (int * Synopsis.t) list;
      (** [(budget, synopsis)] per milestone, finest first — the
          argument {!Serialize.save_ladder_atomic} expects *)
  ladder_degraded : bool;
      (** [true] when a limit stopped the compression before the
          coarsest milestone: unreached rungs hold the best (smallest)
          state reached, possibly over their budget *)
}

val build_ladder_res :
  ?params:params ->
  ?limits:Xmldoc.Limits.t ->
  ?max_heap_words:int ->
  Synopsis.t ->
  budget:int ->
  tiers:int ->
  (ladder_outcome, Xmldoc.Fault.t) result
(** Materialize a degradation ladder in one compression pass: the
    coarser tiers are snapshots the merge loop passes through anyway on
    its way down to [budget/2^(tiers-1)] (the
    {!build_with_checkpoints} pattern), now guarded like {!build_res}
    (input validated, deadline + heap ceiling polled, graceful
    degradation).  Every returned tier passes {!Synopsis.validate}. *)
