module Syntax = Twig.Syntax

let prune_below = 1e-12

(* Maximum number of times one synopsis node may appear on a single
   //-step embedding path.  Compressed synopses can be cyclic (merges
   of same-label nodes at different depths); bounding the unrolling
   keeps the enumeration finite and prevents the loop's average counts
   from being multiplied all the way to the hop limit. *)
let cycle_unroll = 3

type answer = {
  synopsis : Synopsis.t;
  raw : Synopsis.t;
  source : int array;
  var : int array;
  empty : bool;
  degraded : bool;
}

(* Enumeration work budget: synopsis graphs with many same-label nodes
   can harbor combinatorially many embeddings; the DFS stops expanding
   once a path-evaluation has spent this many edge visits (results are
   then slight undercounts — preferable to non-termination). *)
let embedding_work_budget = 200_000

type ctx = {
  ts : Synopsis.t;
  max_hops : int;
  work : int ref;
  budget : Xmldoc.Budget.t;
      (* cooperative cancellation: per-request deadline / node / work
         caps from the serving layer, tick-checked in the DFS *)
  (* per target label: bitmap of nodes from which the label is
     reachable through at least one edge — prunes fruitless DFS
     branches of //-steps *)
  reach : (int, Bytes.t) Hashtbl.t;
}

(* Default hop bound: enough for the synopsis's acyclic height (so
   evaluation over a stable summary is never truncated), floored at 20
   and capped at 64 for heavily cyclic graphs. *)
let default_max_hops ts =
  let h = Array.fold_left max 0 (Synopsis.heights ts) in
  min 64 (max 20 (h + 1))

let make_ctx ?budget ts max_hops =
  let budget =
    match budget with Some b -> b | None -> Xmldoc.Budget.unlimited ()
  in
  { ts; max_hops; work = ref embedding_work_budget; budget; reach = Hashtbl.create 8 }

let reachable ctx label =
  let key = Xmldoc.Label.to_int label in
  match Hashtbl.find_opt ctx.reach key with
  | Some b -> b
  | None ->
    let n = Synopsis.num_nodes ctx.ts in
    let b = Bytes.make n '\000' in
    let changed = ref true in
    while !changed do
      changed := false;
      for v = 0 to n - 1 do
        if Bytes.get b v = '\000' then begin
          let hit =
            Array.exists
              (fun (w, _) ->
                Xmldoc.Label.equal (Synopsis.label ctx.ts w) label
                || Bytes.get b w = '\001')
              (Synopsis.edges ctx.ts v)
          in
          if hit then begin
            Bytes.set b v '\001';
            changed := true
          end
        end
      done
    done;
    Hashtbl.add ctx.reach key b;
    b

(* All embeddings of [p] starting at [u], as (end node, count) pairs,
   one entry per embedding (not yet aggregated).  [emit] receives each
   embedding's end node and count. *)
let rec iter_embeddings ctx u (p : Syntax.path) emit =
  match p with
  | [] -> emit u 1.
  | step :: rest ->
    let continue_from v k_here =
      let s = pred_selectivity ctx v step.Syntax.preds in
      let k = k_here *. s in
      if k > prune_below then
        iter_embeddings ctx v rest (fun e ke -> emit e (k *. ke))
    in
    (match step.axis with
    | Child ->
      Array.iter
        (fun (v, k) ->
          if
            Xmldoc.Budget.tick ctx.budget
            && Xmldoc.Label.equal (Synopsis.label ctx.ts v) step.label
          then continue_from v k)
        (Synopsis.edges ctx.ts u)
    | Descendant ->
      (* DFS over synopsis paths of length >= 1, bounded by max_hops,
         per-path node-visit counts (see [cycle_unroll]), and pruned to
         nodes that can still reach the step's label. *)
      let reach = reachable ctx step.label in
      let visits : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let rec dfs w acc hops =
        if
          hops > 0 && acc > prune_below && !(ctx.work) > 0
          && Xmldoc.Budget.alive ctx.budget
        then
          Array.iter
            (fun (v, k) ->
              decr ctx.work;
              if Xmldoc.Budget.tick ctx.budget then
              let is_match =
                Xmldoc.Label.equal (Synopsis.label ctx.ts v) step.label
              in
              let can_reach = Bytes.get reach v = '\001' in
              if is_match || can_reach then begin
                let seen = Option.value ~default:0 (Hashtbl.find_opt visits v) in
                if seen < cycle_unroll && !(ctx.work) > 0 then begin
                  let acc' = acc *. k in
                  if is_match then continue_from v acc';
                  if can_reach then begin
                    Hashtbl.replace visits v (seen + 1);
                    dfs v acc' (hops - 1);
                    Hashtbl.replace visits v seen
                  end
                end
              end)
            (Synopsis.edges ctx.ts w)
      in
      dfs u 1. ctx.max_hops)

(* Selectivity of the branching predicates anchored at node [v]
   (EVAL_EMBED lines 2-13): per predicate, aggregate descendant counts
   by end node, then apply inclusion-exclusion (computed as
   1 - prod (1 - k_j)) unless some count reaches 1. *)
and pred_selectivity ctx v preds =
  List.fold_left
    (fun acc pred ->
      if acc <= prune_below then acc
      else begin
        let by_end : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
        iter_embeddings ctx v pred (fun e k ->
            match Hashtbl.find_opt by_end e with
            | Some cell -> cell := !cell +. k
            | None -> Hashtbl.add by_end e (ref k));
        let saturated = ref false in
        let misses = ref 1. in
        Hashtbl.iter
          (fun _ k ->
            if !k >= 1. then saturated := true
            else misses := !misses *. (1. -. !k))
          by_end;
        let s = if !saturated then 1. else 1. -. !misses in
        acc *. s
      end)
    1. preds

let embeddings_ctx ctx u p =
  let by_end : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  iter_embeddings ctx u p (fun e k ->
      match Hashtbl.find_opt by_end e with
      | Some cell -> cell := !cell +. k
      | None -> Hashtbl.add by_end e (ref k));
  Hashtbl.fold (fun e k acc -> (e, !k) :: acc) by_end []

let embeddings ?max_hops ?budget ts u p =
  let max_hops =
    match max_hops with Some h -> h | None -> default_max_hops ts
  in
  embeddings_ctx (make_ctx ?budget ts max_hops) u p

(* ------------------------------------------------------------------ *)
(* EVAL_QUERY                                                          *)
(* ------------------------------------------------------------------ *)

type building = {
  nodes : (Xmldoc.Label.t * int * int) Vec.t;  (* label, source, var *)
  index : (int * int, int) Hashtbl.t;  (* (source node, var) -> answer id *)
  out : (int * int, float ref) Hashtbl.t;  (* (from, to) -> count *)
  bind : (int, int list ref) Hashtbl.t;  (* var -> answer ids *)
}

(* Creating a result node consumes a slot of the request budget; when
   the node cap is exhausted, [None] — the caller skips the node and the
   answer degrades to a partial one.  [force] is for the root, which
   every answer must materialize. *)
let fresh_node ?(force = false) b budget ~src ~var label =
  match Hashtbl.find_opt b.index (src, var) with
  | Some id -> Some id
  | None ->
    if not (force || Xmldoc.Budget.take_node budget) then None
    else begin
      let id = Vec.length b.nodes in
      Vec.push b.nodes (label, src, var);
      Hashtbl.add b.index (src, var) id;
      (match Hashtbl.find_opt b.bind var with
      | Some l -> l := id :: !l
      | None -> Hashtbl.add b.bind var (ref [ id ]));
      Some id
    end

let add_count b from into k =
  match Hashtbl.find_opt b.out (from, into) with
  | Some cell -> cell := !cell +. k
  | None -> Hashtbl.add b.out (from, into) (ref k)

let eval ?max_hops ?budget ts (q : Syntax.t) =
  let max_hops =
    match max_hops with Some h -> h | None -> default_max_hops ts
  in
  let budget =
    match budget with Some b -> b | None -> Xmldoc.Budget.unlimited ()
  in
  let b =
    {
      nodes = Vec.create ();
      index = Hashtbl.create 64;
      out = Hashtbl.create 64;
      bind = Hashtbl.create 16;
    }
  in
  let eval_ctx = make_ctx ~budget ts max_hops in
  let root_label = Twig.Eval.nesting_label 0 (Synopsis.label ts ts.Synopsis.root) in
  (* The root is charged against the node cap but materialized
     unconditionally: even a fully-degraded answer is a synopsis with a
     root. *)
  let (_ : bool) = Xmldoc.Budget.take_node budget in
  let (_ : int option) =
    fresh_node ~force:true b budget ~src:ts.Synopsis.root ~var:0 root_label
  in
  (* Pre-order traversal of the query tree: by construction bind[q] is
     complete when q's out-edges are processed. *)
  let rec process (qn : Syntax.node) =
    List.iter
      (fun (edge : Syntax.edge) ->
        let qc = edge.target in
        let parents =
          match Hashtbl.find_opt b.bind qn.var with Some l -> !l | None -> []
        in
        List.iter
          (fun uq ->
            if Xmldoc.Budget.alive budget then begin
              let _, u, _ = Vec.get b.nodes uq in
              List.iter
                (fun (v, k) ->
                  if k > prune_below && Xmldoc.Budget.alive budget then begin
                    let lbl = Twig.Eval.nesting_label qc.var (Synopsis.label ts v) in
                    match fresh_node b budget ~src:v ~var:qc.var lbl with
                    | Some vq -> add_count b uq vq k
                    | None -> () (* node cap: drop — the answer degrades *)
                  end)
                (let ctx = { eval_ctx with work = ref embedding_work_budget } in
                 embeddings_ctx ctx u edge.path)
            end)
          parents;
        process qc)
      qn.edges
  in
  process q;
  (* Validity pruning: an element is a binding only if every required
     query edge has at least one target (§2).  Count-stability makes
     validity uniform per class, so dropping result nodes that lack a
     required child edge is exact over a stable synopsis and the
     natural approximation otherwise.  Children have strictly larger
     variables, so one descending-variable pass suffices. *)
  let n_raw = Vec.length b.nodes in
  let required_children = Array.make (Syntax.num_vars q) [] in
  let rec note (qn : Syntax.node) =
    required_children.(qn.var) <-
      List.filter_map
        (fun (e : Syntax.edge) -> if e.optional then None else Some e.target.var)
        qn.edges;
    List.iter (fun (e : Syntax.edge) -> note e.target) qn.edges
  in
  note q;
  let valid = Array.make n_raw true in
  let ids = Array.init n_raw (fun i -> i) in
  Array.sort
    (fun a c ->
      let _, _, va = Vec.get b.nodes a and _, _, vc = Vec.get b.nodes c in
      Stdlib.compare (vc, c) (va, a))
    ids;
  let out_of = Array.make n_raw [] in
  Hashtbl.iter
    (fun (from, into) k -> out_of.(from) <- (into, !k) :: out_of.(from))
    b.out;
  Array.iter
    (fun uq ->
      let _, _, var = Vec.get b.nodes uq in
      let ok =
        List.for_all
          (fun cvar ->
            List.exists
              (fun (wq, k) ->
                let _, _, wvar = Vec.get b.nodes wq in
                wvar = cvar && k > prune_below && valid.(wq))
              out_of.(uq))
          required_children.(var)
      in
      valid.(uq) <- ok)
    ids;
  Hashtbl.reset b.bind;
  let keep = Hashtbl.create 64 in
  Array.iteri
    (fun i v ->
      if v then begin
        Hashtbl.add keep i (Hashtbl.length keep);
        let _, _, var = Vec.get b.nodes i in
        match Hashtbl.find_opt b.bind var with
        | Some l -> l := i :: !l
        | None -> Hashtbl.add b.bind var (ref [ i ])
      end)
    valid;
  let pruned_out : (int * int, float ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (from, into) k ->
      match (Hashtbl.find_opt keep from, Hashtbl.find_opt keep into) with
      | Some f, Some i -> Hashtbl.replace pruned_out (f, i) k
      | _ -> ())
    b.out;
  let pruned_nodes = Vec.create () in
  Array.iteri
    (fun i v -> if v then Vec.push pruned_nodes (Vec.get b.nodes i))
    valid;
  let root_valid =
    Hashtbl.mem keep (Hashtbl.find b.index (ts.Synopsis.root, 0))
  in
  (* The answer is empty iff the root is invalid: a required variable
     somewhere on the required spine has no (transitively valid)
     bindings.  Required edges nested under optional edges must NOT
     nullify the answer — they only prune their local sub-bindings. *)
  let empty = ref (not root_valid) in
  let b =
    if root_valid then
      { b with nodes = pruned_nodes; out = pruned_out }
    else b (* keep the un-pruned graph so a root node always exists *)
  in
  (* Materialize the synopsis: counts flow topologically (query vars
     strictly increase along edges, so ascending var order works). *)
  let n = Vec.length b.nodes in
  let labels = Array.init n (fun i -> let l, _, _ = Vec.get b.nodes i in l) in
  let srcs = Array.init n (fun i -> let _, s, _ = Vec.get b.nodes i in s) in
  let vars = Array.init n (fun i -> let _, _, v = Vec.get b.nodes i in v) in
  let counts = Array.make n 0. in
  let root_id =
    let raw_root = Hashtbl.find b.index (ts.Synopsis.root, 0) in
    match Hashtbl.find_opt keep raw_root with
    | Some r when root_valid -> r
    | _ -> raw_root
  in
  counts.(root_id) <- 1.;
  let edges_of = Array.make n [] in
  Hashtbl.iter
    (fun (from, into) k -> edges_of.(from) <- (into, !k) :: edges_of.(from))
    b.out;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a bq -> Stdlib.compare (vars.(a), a) (vars.(bq), bq)) order;
  Array.iter
    (fun u ->
      List.iter
        (fun (v, k) -> counts.(v) <- counts.(v) +. (counts.(u) *. k))
        edges_of.(u))
    order;
  let nodes =
    Array.init n (fun i ->
        {
          Synopsis.label = labels.(i);
          count = counts.(i);
          edges = Array.of_list edges_of.(i);
        })
  in
  let raw = Synopsis.make ~root:root_id nodes in
  {
    (* The canonical quotient collapses result nodes with
       indistinguishable result sub-structure (e.g. the many document
       classes a leaf variable binds); it is what approximates the
       nesting tree and what ESD compares. *)
    synopsis = Synopsis.canonicalize raw;
    raw;
    source = srcs;
    var = vars;
    empty = !empty;
    degraded = Xmldoc.Budget.stopped budget <> None;
  }

let to_nesting_tree ?(max_nodes = 2_000_000) ans =
  if ans.empty then None
  else
    match Expand.approximate ~max_nodes ans.synopsis with
    | tree -> Some tree
    | exception Invalid_argument _ -> None
