(** [EVAL_QUERY] and [EVAL_EMBED] (§4.3, Figures 7 and 8): approximate
    query answers over a TREESKETCH.

    The query is processed directly over the synopsis graph; the output
    is another synopsis that summarizes the query's nesting tree.  Each
    output node [uQ(u, q)] represents the elements of synopsis node [u]
    bound to query variable [q]; at most one output node exists per
    [(u, q)] pair, bounding the result by [O(|TS| * |Q|)].

    Descendant ([//]) steps are resolved by enumerating synopsis-path
    embeddings; the count along an embedding is the product of its edge
    averages (the TREESKETCH independence assumption), and branching
    predicates contribute selectivities combined with the
    inclusion–exclusion rule over per-target descendant counts.

    Compressed TREESKETCHes may contain cycles (a merge of same-label
    nodes at different depths); embedding enumeration is therefore
    bounded by [max_hops] edges per descendant step and prunes
    embeddings whose accumulated count falls below [1e-12]. *)

type answer = {
  synopsis : Synopsis.t;
      (** summarizes the nesting tree, in canonical (coarsest
          count-stable) form; node labels are the composite
          ["q<var>#<label>"] labels of {!Twig.Eval.nesting_label}, so
          the answer is directly comparable (via ESD) with an exact
          nesting tree's stable summary *)
  raw : Synopsis.t;
      (** the un-canonicalized result graph, one node per
          (input node, variable) pair *)
  source : int array;  (** per raw node, the input-synopsis node *)
  var : int array;  (** per raw node, the query variable *)
  empty : bool;
      (** true iff some required query variable has no bindings — the
          approximate answer is the empty document *)
  degraded : bool;
      (** true iff the request {!Xmldoc.Budget.t} stopped (deadline,
          node cap or work cap) before evaluation completed: the answer
          is a valid but partial approximation — embeddings discovered
          after the stop are missing, so counts (and hence the
          selectivity estimate) are lower bounds of the undegraded
          estimate *)
}

val eval :
  ?max_hops:int -> ?budget:Xmldoc.Budget.t -> Synopsis.t -> Twig.Syntax.t -> answer
(** Evaluate a twig query over a TREESKETCH.  [max_hops] bounds the
    length of any [//]-step embedding; the default adapts to the
    synopsis's acyclic height (min 20, max 64), so stable-summary
    evaluation is never truncated.

    [budget] is the request's cooperative-cancellation budget: the
    embedding DFS ticks it per edge visit and every fresh result node
    reserves a slot, so an expired deadline or exhausted cap stops the
    evaluation at the next check and the partial answer comes back with
    [degraded = true] (never an exception).  The answer root is always
    materialized; with a node cap [c >= 1] the raw answer has at most
    [c] nodes. *)

val to_nesting_tree : ?max_nodes:int -> answer -> Xmldoc.Tree.t option
(** The approximate nesting tree: [Expand] applied to the answer
    synopsis (fractional counts are discretized with the
    largest-remainder rule).  This is the tree the user would be
    shown, and the object the ESD error metric scores against the true
    nesting tree (§5, §6.1).  [None] if the answer is empty or the
    expansion exceeds [max_nodes] (default 2_000_000). *)

val embeddings :
  ?max_hops:int ->
  ?budget:Xmldoc.Budget.t ->
  Synopsis.t ->
  int ->
  Twig.Syntax.path ->
  (int * float) list
(** [embeddings ts u p] lists, for each synopsis node [v] reachable
    from [u] along an embedding of [p], the estimated number of
    descendants per element of [u] (embeddings ending at the same node
    are summed).  Branch predicates are folded in as selectivities.
    Exposed for tests and for the selectivity estimator. *)
