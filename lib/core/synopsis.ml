type node = {
  label : Xmldoc.Label.t;
  count : float;
  edges : (int * float) array;
}

type t = {
  nodes : node array;
  root : int;
}

(* Size model: a node stores a label id and an element count (4 + 4
   bytes); an edge stores a target id and an average child count
   (4 + 4 bytes).  These constants calibrate the KB budgets quoted in
   the experiments. *)
let node_bytes = 8

let edge_bytes = 8

let num_nodes s = Array.length s.nodes

let num_edges s =
  Array.fold_left (fun acc n -> acc + Array.length n.edges) 0 s.nodes

let size_bytes s = (node_bytes * num_nodes s) + (edge_bytes * num_edges s)

let label s u = s.nodes.(u).label

let count s u = s.nodes.(u).count

let edges s u = s.nodes.(u).edges

let edge_count s u v =
  let arr = s.nodes.(u).edges in
  (* edges are sorted by target: binary search *)
  let rec bsearch lo hi =
    if lo >= hi then 0.
    else begin
      let mid = (lo + hi) / 2 in
      let t, k = arr.(mid) in
      if t = v then k else if t < v then bsearch (mid + 1) hi else bsearch lo mid
    end
  in
  bsearch 0 (Array.length arr)

let parents s =
  let deg = Array.make (num_nodes s) 0 in
  Array.iter
    (fun n -> Array.iter (fun (t, _) -> deg.(t) <- deg.(t) + 1) n.edges)
    s.nodes;
  let out = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make (num_nodes s) 0 in
  Array.iteri
    (fun u n ->
      Array.iter
        (fun (t, _) ->
          out.(t).(fill.(t)) <- u;
          fill.(t) <- fill.(t) + 1)
        n.edges)
    s.nodes;
  out

let total_elements s = Array.fold_left (fun acc n -> acc +. n.count) 0. s.nodes

let is_count_stable s =
  Array.for_all
    (fun n ->
      Array.for_all (fun (_, k) -> Float.equal k (Float.round k)) n.edges)
    s.nodes

let heights s =
  let n = num_nodes s in
  let h = Array.make n (-1) in
  let on_stack = Array.make n false in
  let rec visit u =
    if h.(u) >= 0 then h.(u)
    else if on_stack.(u) then 0 (* cycle guard: stop the walk *)
    else begin
      on_stack.(u) <- true;
      let best = ref 0 in
      Array.iter
        (fun (t, _) ->
          let ht = 1 + visit t in
          if ht > !best then best := ht)
        s.nodes.(u).edges;
      on_stack.(u) <- false;
      h.(u) <- !best;
      !best
    end
  in
  for u = 0 to n - 1 do
    ignore (visit u)
  done;
  h

let canonicalize s =
  let n = Array.length s.nodes in
  if n = 0 then s
  else begin
    (* partition refinement: blocks start as labels and split on the
       multiset of (child block, per-element count) pairs until stable *)
    let block = Array.init n (fun u -> Xmldoc.Label.to_int s.nodes.(u).label) in
    let renumber keys =
      (* compress arbitrary keys to dense block ids; returns #blocks *)
      let tbl = Hashtbl.create n in
      Array.iteri
        (fun u key ->
          let id =
            match Hashtbl.find_opt tbl key with
            | Some id -> id
            | None ->
              let id = Hashtbl.length tbl in
              Hashtbl.add tbl key id;
              id
          in
          block.(u) <- id)
        keys;
      Hashtbl.length tbl
    in
    let count_blocks = renumber (Array.map string_of_int (Array.copy block)) in
    let blocks = ref count_blocks in
    let changed = ref true in
    while !changed do
      let keys =
        Array.mapi
          (fun u node ->
            let sig_edges =
              Array.to_list node.edges
              |> List.map (fun (t, k) -> (block.(t), k))
              |> List.sort Stdlib.compare
            in
            (* fold duplicate target blocks *)
            let rec fold = function
              | (b1, k1) :: (b2, k2) :: tl when b1 = b2 -> fold ((b1, k1 +. k2) :: tl)
              | x :: tl -> x :: fold tl
              | [] -> []
            in
            Format.asprintf "%d|%a" block.(u)
              (fun ppf l ->
                List.iter (fun (b, k) -> Format.fprintf ppf "%d:%h;" b k) l)
              (fold sig_edges))
          s.nodes
      in
      let nb = renumber keys in
      changed := nb <> !blocks;
      blocks := nb
    done;
    if !blocks = n then s
    else begin
      (* one representative node per block; counts add *)
      let count = Array.make !blocks 0. in
      let repr = Array.make !blocks (-1) in
      Array.iteri
        (fun u node ->
          count.(block.(u)) <- count.(block.(u)) +. node.count;
          if repr.(block.(u)) < 0 then repr.(block.(u)) <- u)
        s.nodes;
      let nodes =
        Array.init !blocks (fun b ->
            let u = repr.(b) in
            let tbl = Hashtbl.create 8 in
            Array.iter
              (fun (t, k) ->
                let bt = block.(t) in
                Hashtbl.replace tbl bt
                  (k +. Option.value ~default:0. (Hashtbl.find_opt tbl bt)))
              s.nodes.(u).edges;
            {
              label = s.nodes.(u).label;
              count = count.(b);
              edges = Array.of_list (Hashtbl.fold (fun t k acc -> (t, k) :: acc) tbl []);
            })
      in
      let edges_sorted =
        Array.map
          (fun node ->
            let e = Array.copy node.edges in
            Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) e;
            { node with edges = e })
          nodes
      in
      { nodes = edges_sorted; root = block.(s.root) }
    end
  end

let validate s =
  let n = Array.length s.nodes in
  let fail fmt = Printf.ksprintf (fun msg -> Stdlib.Error msg) fmt in
  if n = 0 then fail "empty synopsis"
  else if s.root < 0 || s.root >= n then
    fail "root %d out of range [0,%d)" s.root n
  else begin
    let problem = ref None in
    let report fmt = Printf.ksprintf (fun msg -> problem := Some msg) fmt in
    Array.iteri
      (fun u node ->
        if !problem = None then begin
          if not (Float.is_finite node.count) then
            report "node %d: count %g is not finite" u node.count
          else if node.count < 0. then
            report "node %d: negative count %g" u node.count;
          let prev = ref (-1) in
          Array.iter
            (fun (t, k) ->
              if !problem = None then begin
                if t < 0 || t >= n then
                  report "node %d: edge target %d out of range [0,%d)" u t n
                else if t <= !prev then
                  report "node %d: duplicate or unsorted edge target %d" u t
                else if not (Float.is_finite k) then
                  report "edge (%d,%d): average %g is not finite" u t k
                else if not (k > 0.) then
                  report "edge (%d,%d): non-positive average %g" u t k;
                prev := t
              end)
            node.edges
        end)
      s.nodes;
    match !problem with None -> Ok () | Some msg -> Stdlib.Error msg
  end

let make ~root nodes =
  let n = Array.length nodes in
  if root < 0 || root >= n then invalid_arg "Synopsis.make: bad root";
  let nodes =
    Array.map
      (fun node ->
        Array.iter
          (fun (t, k) ->
            if t < 0 || t >= n then invalid_arg "Synopsis.make: bad edge target";
            if not (k > 0.) then invalid_arg "Synopsis.make: non-positive edge count")
          node.edges;
        let edges = Array.copy node.edges in
        Array.sort (fun (a, _) (b, _) -> Stdlib.compare a b) edges;
        { node with edges })
      nodes
  in
  { nodes; root }

let pp ppf s =
  Format.fprintf ppf "@[<v>synopsis: %d nodes, %d edges, %d bytes, root=%d@,"
    (num_nodes s) (num_edges s) (size_bytes s) s.root;
  Array.iteri
    (fun u n ->
      Format.fprintf ppf "  [%d] %s count=%g:" u
        (Xmldoc.Label.to_string n.label)
        n.count;
      Array.iter (fun (t, k) -> Format.fprintf ppf " ->%d(%g)" t k) n.edges;
      Format.fprintf ppf "@,")
    s.nodes;
  Format.fprintf ppf "@]"
