(* Table-driven CRC-32 (IEEE 802.3 polynomial, reflected), implemented
   here because the sealed toolchain has no zlib binding.  Matches the
   checksum of [cksum -o 3] / zlib's [crc32], which keeps snapshot
   files verifiable with standard external tools. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let crc = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let string s = update 0l s 0 (String.length s)

let to_hex crc = Printf.sprintf "%08lx" crc

let of_hex s =
  if String.length s <> 8 then None
  else
    (* Int32.of_string accepts signed decimals etc.; restrict to hex
       digits so snapshot crc fields are exactly 8 hex characters. *)
    let ok =
      String.for_all
        (fun c ->
          (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
        s
    in
    if not ok then None else Int32.of_string_opt ("0x" ^ s)
