(** Top-down TREESKETCH construction — the alternative §4.2 considers
    and rejects.

    Instead of compressing the count-stable summary bottom-up
    (TSBUILD), construction starts from the coarse label-split graph
    and greedily {e splits} the cluster contributing the most squared
    error, on its highest-variance outgoing dimension, until the budget
    is filled.  This mirrors the XSKETCH construction discipline; the
    paper reports that "bottom-up TREESKETCH construction yields much
    better results, without significantly increasing construction
    time", which the [ablation] benchmark reproduces. *)

val build :
  ?cancel:Xmldoc.Budget.t -> Synopsis.t -> budget:int -> Synopsis.t * float
(** [build stable ~budget] grows a synopsis from the label-split graph
    by error-greedy splitting until the budget is reached (the final
    split may overshoot it by one node's worth of bytes).  Returns the
    synopsis and its squared error (same metric as
    {!Cluster.sq_error}, so bottom-up and top-down construction are
    directly comparable).

    [cancel] is polled once per split: a stopped budget (deadline or
    work cap) ends construction early and the coarser
    partition-so-far is returned — a valid synopsis, merely less
    refined.  Check [Xmldoc.Budget.stopped] to distinguish completion
    from cancellation. *)
